#ifndef MLCORE_GRAPH_MULTILAYER_GRAPH_H_
#define MLCORE_GRAPH_MULTILAYER_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/check.h"

namespace mlcore {

/// Vertex identifier in [0, NumVertices()).
using VertexId = int32_t;
/// Layer identifier in [0, NumLayers()).
using LayerId = int32_t;

/// A sorted set of vertex ids. The canonical representation of vertex
/// subsets (d-cores, d-CCs, candidate scopes) throughout the library.
using VertexSet = std::vector<VertexId>;
/// A sorted set of layer ids (the paper's `L ⊆ [l(G)]`).
using LayerSet = std::vector<LayerId>;

/// Immutable undirected multi-layer graph (paper §II).
///
/// All layers share the vertex id space [0, n). Each layer is stored as a
/// compressed sparse row structure with sorted, duplicate-free neighbour
/// lists and no self loops. Construct via `GraphBuilder`, or zero-copy
/// from an MLG1 mapping via `FromMappedCsr` (src/format, DESIGN.md §13).
///
/// Backing-store seam: every accessor reads the per-layer adjacency
/// *views* (`Csr::offsets` / `Csr::neighbors`), which point either into
/// vectors owned by this graph or into an external backing store (a
/// memory-mapped MLG1 file) kept alive by `backing_`. Owned and mapped
/// layers coexist within one graph — `EditedCopy` rebuilds only edited
/// layers, so an update epoch on top of a mapped base snapshot still
/// shares the mapping for every untouched layer.
///
/// "Removing a vertex from G", as the paper's pseudocode phrases it, is
/// realised by the algorithms through explicit vertex-subset scoping; the
/// graph object itself is never mutated, which makes it safe to share
/// across concurrent searches.
class MultiLayerGraph {
 public:
  MultiLayerGraph() = default;

  int32_t NumVertices() const { return num_vertices_; }
  int32_t NumLayers() const { return static_cast<int32_t>(layers_.size()); }

  /// Neighbours of `v` on `layer`, sorted ascending.
  std::span<const VertexId> Neighbors(LayerId layer, VertexId v) const {
    const Csr& csr = layers_[static_cast<size_t>(layer)];
    const auto begin = csr.offsets[static_cast<size_t>(v)];
    const auto end = csr.offsets[static_cast<size_t>(v) + 1];
    return {csr.neighbors.data() + begin, static_cast<size_t>(end - begin)};
  }

  /// Degree of `v` on `layer` (the paper's d_{G_i}(v)).
  int32_t Degree(LayerId layer, VertexId v) const {
    const Csr& csr = layers_[static_cast<size_t>(layer)];
    return static_cast<int32_t>(csr.offsets[static_cast<size_t>(v) + 1] -
                                csr.offsets[static_cast<size_t>(v)]);
  }

  /// True iff edge (u, v) exists on `layer`. O(log degree).
  bool HasEdge(LayerId layer, VertexId u, VertexId v) const;

  /// Number of undirected edges on `layer` (|E_i|).
  int64_t NumEdges(LayerId layer) const {
    return static_cast<int64_t>(
               layers_[static_cast<size_t>(layer)].neighbors.size()) /
           2;
  }

  /// Sum of per-layer edge counts (the paper's Σ|E(G_i)| statistic).
  int64_t TotalEdges() const;

  /// Number of distinct edges across layers (the paper's |∪E(G_i)|).
  /// Computed on demand in O(Σ degree · log l) time.
  int64_t DistinctEdges() const;

  /// Materialises the multi-layer subgraph induced by `vertices`
  /// (paper's G[S]) with vertices renumbered to [0, |S|). If `old_ids` is
  /// non-null it receives the mapping from new id to original id.
  /// `vertices` must be sorted and duplicate-free.
  MultiLayerGraph InducedSubgraph(const VertexSet& vertices,
                                  std::vector<VertexId>* old_ids) const;

  /// Returns a graph containing only the given layers (renumbered to
  /// [0, |layers|) in the given order). Used by the Fig 27 q-sweep.
  MultiLayerGraph SelectLayers(const LayerSet& layers) const;

  /// Canonical (u < v), sorted, duplicate-free per-layer edge list — the
  /// edit currency of `EditedCopy` and the dynamic `GraphStore`.
  using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

  /// Returns a copy with `extra_vertices` fresh (isolated) vertices
  /// appended and the given per-layer edge edits applied. `added[i]` /
  /// `removed[i]` are EdgeLists (canonical, sorted, deduped); every added
  /// edge must be absent from layer i and every removed edge present —
  /// the caller (GraphStore::ApplyUpdate) validates. Layers with no edits
  /// are copied verbatim; edited layers cost O(|E_i| + |edits|). The MVCC
  /// primitive behind epoch publication (DESIGN.md §8).
  MultiLayerGraph EditedCopy(int32_t extra_vertices,
                             const std::vector<EdgeList>& added,
                             const std::vector<EdgeList>& removed) const;

  /// One layer's adjacency as externally owned CSR views, the input of
  /// `FromMappedCsr`. `offsets` has num_vertices + 1 entries; `neighbors`
  /// holds the sorted, duplicate-free, self-loop-free lists the offsets
  /// slice. The format reader validates these invariants before handing
  /// views to the graph.
  struct MappedLayer {
    std::span<const int64_t> offsets;
    std::span<const VertexId> neighbors;
  };

  /// Zero-copy construction seam for the binary loader (src/format): the
  /// returned graph's adjacency views alias the given spans, and `backing`
  /// (typically the util::MmapFile of an MLG1 container) is held for the
  /// graph's lifetime — including through copies, `SelectLayers`, and the
  /// unedited layers of `EditedCopy`.
  static MultiLayerGraph FromMappedCsr(int32_t num_vertices,
                                       const std::vector<MappedLayer>& layers,
                                       std::shared_ptr<const void> backing);

  /// This layer's whole CSR block (offsets size n+1, concatenated sorted
  /// neighbour lists) — the writer-side seam of the MLG1 container and the
  /// cheap whole-layer comparison surface used by tests and benches. Views
  /// are valid as long as this graph is.
  MappedLayer LayerCsr(LayerId layer) const {
    const Csr& csr = layers_[static_cast<size_t>(layer)];
    return {csr.offsets, csr.neighbors};
  }

  /// Bytes of adjacency data aliasing an external backing store (0 for a
  /// fully owned graph). Feeds the `format.mmap_bytes` metric.
  int64_t MappedBytes() const;

 private:
  friend class GraphBuilder;

  /// Per-layer CSR with the owned/mapped seam. The `offsets` / `neighbors`
  /// views are what accessors read; they point at the `*_store` vectors
  /// for owned layers and at the graph's backing mapping for mapped ones.
  /// Writers fill the stores and call `SealOwned()`. Copying re-anchors
  /// views into the copied stores (owned) or shares them (mapped — the
  /// enclosing graph copies `backing_` alongside); moving keeps views
  /// valid because vector moves transfer the heap buffer.
  struct Csr {
    Csr() = default;
    Csr(const Csr& other) { *this = other; }
    Csr& operator=(const Csr& other);
    Csr(Csr&&) noexcept = default;
    Csr& operator=(Csr&&) noexcept = default;

    void SealOwned() {
      offsets = offsets_store;
      neighbors = neighbors_store;
    }

    std::vector<int64_t> offsets_store;     // empty for mapped layers
    std::vector<VertexId> neighbors_store;  // empty for mapped layers
    std::span<const int64_t> offsets;       // size n+1
    std::span<const VertexId> neighbors;
  };

  int32_t num_vertices_ = 0;
  std::vector<Csr> layers_;
  /// Keeps externally owned adjacency memory alive (null when every layer
  /// is owned). Shared, never inspected — the type-erased handle is what
  /// lets owned-vector and mapped storage coexist behind one graph type.
  std::shared_ptr<const void> backing_;
};

/// Returns [0, 1, ..., n-1].
VertexSet AllVertices(const MultiLayerGraph& graph);
/// Returns [0, 1, ..., l-1].
LayerSet AllLayers(const MultiLayerGraph& graph);

/// Intersection of two sorted vertex sets.
VertexSet IntersectSorted(const VertexSet& a, const VertexSet& b);
/// Buffer-reusing form: clears `*out` (which must alias neither input) and
/// fills it with a ∩ b.
void IntersectSortedInto(const VertexSet& a, const VertexSet& b,
                         VertexSet* out);
/// Union of two sorted vertex sets.
VertexSet UnionSorted(const VertexSet& a, const VertexSet& b);
/// True iff sorted set `a` is a subset of sorted set `b`.
bool IsSubsetSorted(const VertexSet& a, const VertexSet& b);

}  // namespace mlcore

#endif  // MLCORE_GRAPH_MULTILAYER_GRAPH_H_
