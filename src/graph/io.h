#ifndef MLCORE_GRAPH_IO_H_
#define MLCORE_GRAPH_IO_H_

#include <string>
#include <vector>

#include "graph/multilayer_graph.h"
#include "store/update.h"

namespace mlcore {

/// Result of an I/O operation. `ok` is true on success; otherwise `error`
/// holds a human-readable description. (The library avoids exceptions on
/// I/O paths, following the status-return idiom.)
struct IoStatus {
  bool ok = true;
  std::string error;

  static IoStatus Ok() { return {}; }
  static IoStatus Error(std::string message) { return {false, std::move(message)}; }
};

/// Text format for multi-layer edge lists:
///
///   # comments and blank lines are ignored
///   n <num_vertices> <num_layers>
///   <layer> <u> <v>
///   ...
///
/// Vertices and layers are 0-based. This matches how KONECT/SNAP temporal
/// dumps are typically sliced into layers (one edge row per layer).
///
/// The loader validates, it does not repair: self-loops and duplicate
/// edges (within a layer, in either endpoint order) are rejected with a
/// `path:line:` error instead of silently building a different graph than
/// the file describes.
IoStatus LoadMultiLayerGraph(const std::string& path, MultiLayerGraph* graph);

/// Writes `graph` in the format documented at LoadMultiLayerGraph.
IoStatus SaveMultiLayerGraph(const MultiLayerGraph& graph,
                             const std::string& path);

/// Compact binary format (magic "MLCB1", little-endian int32/int64 edge
/// pairs per layer). Roughly 50x faster to load than the text format;
/// used by the benchmark harness to cache generated datasets.
IoStatus SaveMultiLayerGraphBinary(const MultiLayerGraph& graph,
                                   const std::string& path);
IoStatus LoadMultiLayerGraphBinary(const std::string& path,
                                   MultiLayerGraph* graph);

/// Text format for edge-update streams (store/update.h), the replay input
/// of `dccs_cli --updates` and the `streaming_stories` example. One record
/// per line, grouped into `UpdateBatch`es:
///
///   # comments and blank lines are ignored
///   + <layer> <u> <v>     insert edge (u, v) on <layer>
///   - <layer> <u> <v>     remove edge (u, v) from <layer>
///   addv <count>          append <count> fresh isolated vertices
///   delv <v>              isolate vertex v (drop all its edges)
///   commit                end the current batch
///
/// Records after the final `commit` form a trailing batch; batches with no
/// records are dropped. Ids are validated structurally here (non-negative,
/// well-formed); graph-dependent validation (ranges, existence) happens in
/// `GraphStore::ApplyUpdate`.
IoStatus LoadUpdateStream(const std::string& path,
                          std::vector<UpdateBatch>* batches);

/// Writes `batches` in the format documented at LoadUpdateStream.
IoStatus SaveUpdateStream(const std::vector<UpdateBatch>& batches,
                          const std::string& path);

}  // namespace mlcore

#endif  // MLCORE_GRAPH_IO_H_
