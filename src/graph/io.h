#ifndef MLCORE_GRAPH_IO_H_
#define MLCORE_GRAPH_IO_H_

#include <string>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Result of an I/O operation. `ok` is true on success; otherwise `error`
/// holds a human-readable description. (The library avoids exceptions on
/// I/O paths, following the status-return idiom.)
struct IoStatus {
  bool ok = true;
  std::string error;

  static IoStatus Ok() { return {}; }
  static IoStatus Error(std::string message) { return {false, std::move(message)}; }
};

/// Text format for multi-layer edge lists:
///
///   # comments and blank lines are ignored
///   n <num_vertices> <num_layers>
///   <layer> <u> <v>
///   ...
///
/// Vertices and layers are 0-based. This matches how KONECT/SNAP temporal
/// dumps are typically sliced into layers (one edge row per layer).
IoStatus LoadMultiLayerGraph(const std::string& path, MultiLayerGraph* graph);

/// Writes `graph` in the format documented at LoadMultiLayerGraph.
IoStatus SaveMultiLayerGraph(const MultiLayerGraph& graph,
                             const std::string& path);

/// Compact binary format (magic "MLCB1", little-endian int32/int64 edge
/// pairs per layer). Roughly 50x faster to load than the text format;
/// used by the benchmark harness to cache generated datasets.
IoStatus SaveMultiLayerGraphBinary(const MultiLayerGraph& graph,
                                   const std::string& path);
IoStatus LoadMultiLayerGraphBinary(const std::string& path,
                                   MultiLayerGraph* graph);

}  // namespace mlcore

#endif  // MLCORE_GRAPH_IO_H_
