#include "graph/multilayer_graph.h"

#include <algorithm>
#include <unordered_set>

namespace mlcore {

MultiLayerGraph::Csr& MultiLayerGraph::Csr::operator=(const Csr& other) {
  if (this == &other) return *this;
  // Per-array seam: an array owned by `other` is deep-copied and the view
  // re-anchored; a mapped array is shared by view (the enclosing graph
  // copies backing_ alongside, keeping the mapping alive).
  if (other.offsets.data() == other.offsets_store.data()) {
    offsets_store = other.offsets_store;
    offsets = offsets_store;
  } else {
    offsets_store.clear();
    offsets = other.offsets;
  }
  if (other.neighbors.data() == other.neighbors_store.data()) {
    neighbors_store = other.neighbors_store;
    neighbors = neighbors_store;
  } else {
    neighbors_store.clear();
    neighbors = other.neighbors;
  }
  return *this;
}

MultiLayerGraph MultiLayerGraph::FromMappedCsr(
    int32_t num_vertices, const std::vector<MappedLayer>& layers,
    std::shared_ptr<const void> backing) {
  MultiLayerGraph graph;
  graph.num_vertices_ = num_vertices;
  graph.layers_.resize(layers.size());
  for (size_t i = 0; i < layers.size(); ++i) {
    MLCORE_DCHECK(layers[i].offsets.size() ==
                  static_cast<size_t>(num_vertices) + 1);
    graph.layers_[i].offsets = layers[i].offsets;
    graph.layers_[i].neighbors = layers[i].neighbors;
  }
  graph.backing_ = std::move(backing);
  return graph;
}

int64_t MultiLayerGraph::MappedBytes() const {
  int64_t bytes = 0;
  for (const Csr& csr : layers_) {
    if (csr.offsets.data() != csr.offsets_store.data()) {
      bytes += static_cast<int64_t>(csr.offsets.size_bytes());
    }
    if (csr.neighbors.data() != csr.neighbors_store.data()) {
      bytes += static_cast<int64_t>(csr.neighbors.size_bytes());
    }
  }
  return bytes;
}

bool MultiLayerGraph::HasEdge(LayerId layer, VertexId u, VertexId v) const {
  auto nbrs = Neighbors(layer, u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

int64_t MultiLayerGraph::TotalEdges() const {
  int64_t total = 0;
  for (LayerId i = 0; i < NumLayers(); ++i) total += NumEdges(i);
  return total;
}

int64_t MultiLayerGraph::DistinctEdges() const {
  // Merge the per-layer neighbour lists of every vertex and count distinct
  // higher-id endpoints. Avoids hashing all edges at once.
  int64_t distinct = 0;
  std::vector<VertexId> merged;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    merged.clear();
    for (LayerId i = 0; i < NumLayers(); ++i) {
      for (VertexId u : Neighbors(i, v)) {
        if (u > v) merged.push_back(u);
      }
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    distinct += static_cast<int64_t>(merged.size());
  }
  return distinct;
}

MultiLayerGraph MultiLayerGraph::InducedSubgraph(
    const VertexSet& vertices, std::vector<VertexId>* old_ids) const {
  MLCORE_DCHECK(std::is_sorted(vertices.begin(), vertices.end()));
  const auto sub_n = static_cast<int32_t>(vertices.size());
  // Dense old-id -> new-id map; -1 marks "not in subgraph".
  std::vector<VertexId> new_id(static_cast<size_t>(num_vertices_), -1);
  for (int32_t i = 0; i < sub_n; ++i) {
    new_id[static_cast<size_t>(vertices[static_cast<size_t>(i)])] = i;
  }

  MultiLayerGraph sub;
  sub.num_vertices_ = sub_n;
  sub.layers_.resize(layers_.size());
  for (LayerId layer = 0; layer < NumLayers(); ++layer) {
    Csr& csr = sub.layers_[static_cast<size_t>(layer)];
    auto& offsets = csr.offsets_store;
    auto& neighbors = csr.neighbors_store;
    offsets.assign(static_cast<size_t>(sub_n) + 1, 0);
    // First pass: count surviving neighbours.
    for (int32_t i = 0; i < sub_n; ++i) {
      int64_t cnt = 0;
      for (VertexId u : Neighbors(layer, vertices[static_cast<size_t>(i)])) {
        if (new_id[static_cast<size_t>(u)] >= 0) ++cnt;
      }
      offsets[static_cast<size_t>(i) + 1] = cnt;
    }
    for (int32_t i = 0; i < sub_n; ++i) {
      offsets[static_cast<size_t>(i) + 1] += offsets[static_cast<size_t>(i)];
    }
    neighbors.resize(static_cast<size_t>(offsets.back()));
    // Second pass: fill. Source lists are sorted by old id, and new ids are
    // assigned in old-id order, so output lists are sorted as well.
    for (int32_t i = 0; i < sub_n; ++i) {
      int64_t pos = offsets[static_cast<size_t>(i)];
      for (VertexId u : Neighbors(layer, vertices[static_cast<size_t>(i)])) {
        VertexId nu = new_id[static_cast<size_t>(u)];
        if (nu >= 0) neighbors[static_cast<size_t>(pos++)] = nu;
      }
    }
    csr.SealOwned();
  }
  if (old_ids != nullptr) *old_ids = vertices;
  return sub;
}

namespace {

/// Expands a canonical (u < v) edge list into directed (src, dst) records
/// sorted by (src, dst), so per-vertex slices come off a single pointer
/// sweep instead of an n-sized bucket array.
void ExpandDirected(const MultiLayerGraph::EdgeList& edges,
                    std::vector<std::pair<VertexId, VertexId>>* directed) {
  directed->clear();
  directed->reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    directed->emplace_back(u, v);
    directed->emplace_back(v, u);
  }
  std::sort(directed->begin(), directed->end());
}

}  // namespace

MultiLayerGraph MultiLayerGraph::EditedCopy(
    int32_t extra_vertices, const std::vector<EdgeList>& added,
    const std::vector<EdgeList>& removed) const {
  // GraphStore::Normalize validates every batch before EditedCopy runs.
  MLCORE_DCHECK(extra_vertices >= 0);
  MLCORE_DCHECK(added.size() == layers_.size());
  MLCORE_DCHECK(removed.size() == layers_.size());
  const int32_t new_n = num_vertices_ + extra_vertices;

  MultiLayerGraph out;
  out.num_vertices_ = new_n;
  out.layers_.resize(layers_.size());
  // Unedited layers may alias this graph's backing mapping by view; the
  // shared handle keeps the mapped base snapshot alive across epochs.
  out.backing_ = backing_;
  std::vector<std::pair<VertexId, VertexId>> add_dir;
  std::vector<std::pair<VertexId, VertexId>> rem_dir;
  for (LayerId layer = 0; layer < NumLayers(); ++layer) {
    const Csr& src = layers_[static_cast<size_t>(layer)];
    Csr& dst = out.layers_[static_cast<size_t>(layer)];
    const EdgeList& add = added[static_cast<size_t>(layer)];
    const EdgeList& rem = removed[static_cast<size_t>(layer)];
    if (add.empty() && rem.empty()) {
      dst = src;
      if (extra_vertices > 0) {
        // Appended vertices are isolated: pad the offset table. The padded
        // table is always owned; the neighbour view stays shared (a mapped
        // layer keeps aliasing the base snapshot's neighbour block).
        std::vector<int64_t> padded(src.offsets.begin(), src.offsets.end());
        padded.resize(static_cast<size_t>(new_n) + 1, src.offsets.back());
        dst.offsets_store = std::move(padded);
        dst.offsets = dst.offsets_store;
      }
      continue;
    }
    ExpandDirected(add, &add_dir);
    ExpandDirected(rem, &rem_dir);

    auto& offsets = dst.offsets_store;
    auto& neighbors = dst.neighbors_store;
    offsets.assign(static_cast<size_t>(new_n) + 1, 0);
    size_t ap = 0, rp = 0;
    for (VertexId v = 0; v < new_n; ++v) {
      int64_t deg = v < num_vertices_ ? Degree(layer, v) : 0;
      while (ap < add_dir.size() && add_dir[ap].first == v) {
        ++deg;
        ++ap;
      }
      while (rp < rem_dir.size() && rem_dir[rp].first == v) {
        --deg;
        ++rp;
      }
      MLCORE_DCHECK(deg >= 0);
      offsets[static_cast<size_t>(v) + 1] =
          offsets[static_cast<size_t>(v)] + deg;
    }
    neighbors.resize(static_cast<size_t>(offsets.back()));
    ap = rp = 0;
    for (VertexId v = 0; v < new_n; ++v) {
      // Three-way sorted sweep: old neighbours minus removals, merged with
      // additions; every sequence is sorted by destination id, so the
      // output list is emitted sorted.
      auto old_nbrs = v < num_vertices_ ? Neighbors(layer, v)
                                        : std::span<const VertexId>();
      size_t oi = 0;
      int64_t pos = offsets[static_cast<size_t>(v)];
      while (oi < old_nbrs.size()) {
        const VertexId u = old_nbrs[oi];
        if (rp < rem_dir.size() && rem_dir[rp].first == v &&
            rem_dir[rp].second == u) {
          ++rp;
          ++oi;
          continue;
        }
        while (ap < add_dir.size() && add_dir[ap].first == v &&
               add_dir[ap].second < u) {
          neighbors[static_cast<size_t>(pos++)] = add_dir[ap++].second;
        }
        neighbors[static_cast<size_t>(pos++)] = u;
        ++oi;
      }
      while (ap < add_dir.size() && add_dir[ap].first == v) {
        neighbors[static_cast<size_t>(pos++)] = add_dir[ap++].second;
      }
      MLCORE_DCHECK(pos == offsets[static_cast<size_t>(v) + 1]);
    }
    dst.SealOwned();
  }
  return out;
}

MultiLayerGraph MultiLayerGraph::SelectLayers(const LayerSet& layers) const {
  MultiLayerGraph out;
  out.num_vertices_ = num_vertices_;
  // Selected mapped layers alias by view; share the backing mapping.
  out.backing_ = backing_;
  out.layers_.reserve(layers.size());
  for (LayerId layer : layers) {
    MLCORE_DCHECK(layer >= 0 && layer < NumLayers());
    out.layers_.push_back(layers_[static_cast<size_t>(layer)]);
  }
  return out;
}

VertexSet AllVertices(const MultiLayerGraph& graph) {
  VertexSet all(static_cast<size_t>(graph.NumVertices()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    all[static_cast<size_t>(v)] = v;
  }
  return all;
}

LayerSet AllLayers(const MultiLayerGraph& graph) {
  LayerSet all(static_cast<size_t>(graph.NumLayers()));
  for (LayerId i = 0; i < graph.NumLayers(); ++i) {
    all[static_cast<size_t>(i)] = i;
  }
  return all;
}

VertexSet IntersectSorted(const VertexSet& a, const VertexSet& b) {
  VertexSet out;
  IntersectSortedInto(a, b, &out);
  return out;
}

void IntersectSortedInto(const VertexSet& a, const VertexSet& b,
                         VertexSet* out) {
  out->clear();
  out->reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(*out));
}

VertexSet UnionSorted(const VertexSet& a, const VertexSet& b) {
  VertexSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool IsSubsetSorted(const VertexSet& a, const VertexSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace mlcore
