#include "graph/multilayer_graph.h"

#include <algorithm>
#include <unordered_set>

namespace mlcore {

bool MultiLayerGraph::HasEdge(LayerId layer, VertexId u, VertexId v) const {
  auto nbrs = Neighbors(layer, u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

int64_t MultiLayerGraph::TotalEdges() const {
  int64_t total = 0;
  for (LayerId i = 0; i < NumLayers(); ++i) total += NumEdges(i);
  return total;
}

int64_t MultiLayerGraph::DistinctEdges() const {
  // Merge the per-layer neighbour lists of every vertex and count distinct
  // higher-id endpoints. Avoids hashing all edges at once.
  int64_t distinct = 0;
  std::vector<VertexId> merged;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    merged.clear();
    for (LayerId i = 0; i < NumLayers(); ++i) {
      for (VertexId u : Neighbors(i, v)) {
        if (u > v) merged.push_back(u);
      }
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    distinct += static_cast<int64_t>(merged.size());
  }
  return distinct;
}

MultiLayerGraph MultiLayerGraph::InducedSubgraph(
    const VertexSet& vertices, std::vector<VertexId>* old_ids) const {
  MLCORE_DCHECK(std::is_sorted(vertices.begin(), vertices.end()));
  const auto sub_n = static_cast<int32_t>(vertices.size());
  // Dense old-id -> new-id map; -1 marks "not in subgraph".
  std::vector<VertexId> new_id(static_cast<size_t>(num_vertices_), -1);
  for (int32_t i = 0; i < sub_n; ++i) {
    new_id[static_cast<size_t>(vertices[static_cast<size_t>(i)])] = i;
  }

  MultiLayerGraph sub;
  sub.num_vertices_ = sub_n;
  sub.layers_.resize(layers_.size());
  for (LayerId layer = 0; layer < NumLayers(); ++layer) {
    Csr& csr = sub.layers_[static_cast<size_t>(layer)];
    csr.offsets.assign(static_cast<size_t>(sub_n) + 1, 0);
    // First pass: count surviving neighbours.
    for (int32_t i = 0; i < sub_n; ++i) {
      int64_t cnt = 0;
      for (VertexId u : Neighbors(layer, vertices[static_cast<size_t>(i)])) {
        if (new_id[static_cast<size_t>(u)] >= 0) ++cnt;
      }
      csr.offsets[static_cast<size_t>(i) + 1] = cnt;
    }
    for (int32_t i = 0; i < sub_n; ++i) {
      csr.offsets[static_cast<size_t>(i) + 1] +=
          csr.offsets[static_cast<size_t>(i)];
    }
    csr.neighbors.resize(static_cast<size_t>(csr.offsets.back()));
    // Second pass: fill. Source lists are sorted by old id, and new ids are
    // assigned in old-id order, so output lists are sorted as well.
    for (int32_t i = 0; i < sub_n; ++i) {
      int64_t pos = csr.offsets[static_cast<size_t>(i)];
      for (VertexId u : Neighbors(layer, vertices[static_cast<size_t>(i)])) {
        VertexId nu = new_id[static_cast<size_t>(u)];
        if (nu >= 0) csr.neighbors[static_cast<size_t>(pos++)] = nu;
      }
    }
  }
  if (old_ids != nullptr) *old_ids = vertices;
  return sub;
}

namespace {

/// Expands a canonical (u < v) edge list into directed (src, dst) records
/// sorted by (src, dst), so per-vertex slices come off a single pointer
/// sweep instead of an n-sized bucket array.
void ExpandDirected(const MultiLayerGraph::EdgeList& edges,
                    std::vector<std::pair<VertexId, VertexId>>* directed) {
  directed->clear();
  directed->reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    directed->emplace_back(u, v);
    directed->emplace_back(v, u);
  }
  std::sort(directed->begin(), directed->end());
}

}  // namespace

MultiLayerGraph MultiLayerGraph::EditedCopy(
    int32_t extra_vertices, const std::vector<EdgeList>& added,
    const std::vector<EdgeList>& removed) const {
  // GraphStore::Normalize validates every batch before EditedCopy runs.
  MLCORE_DCHECK(extra_vertices >= 0);
  MLCORE_DCHECK(added.size() == layers_.size());
  MLCORE_DCHECK(removed.size() == layers_.size());
  const int32_t new_n = num_vertices_ + extra_vertices;

  MultiLayerGraph out;
  out.num_vertices_ = new_n;
  out.layers_.resize(layers_.size());
  std::vector<std::pair<VertexId, VertexId>> add_dir;
  std::vector<std::pair<VertexId, VertexId>> rem_dir;
  for (LayerId layer = 0; layer < NumLayers(); ++layer) {
    const Csr& src = layers_[static_cast<size_t>(layer)];
    Csr& dst = out.layers_[static_cast<size_t>(layer)];
    const EdgeList& add = added[static_cast<size_t>(layer)];
    const EdgeList& rem = removed[static_cast<size_t>(layer)];
    if (add.empty() && rem.empty()) {
      dst = src;
      // Appended vertices are isolated: pad the offset table.
      dst.offsets.resize(static_cast<size_t>(new_n) + 1, src.offsets.back());
      continue;
    }
    ExpandDirected(add, &add_dir);
    ExpandDirected(rem, &rem_dir);

    dst.offsets.assign(static_cast<size_t>(new_n) + 1, 0);
    size_t ap = 0, rp = 0;
    for (VertexId v = 0; v < new_n; ++v) {
      int64_t deg = v < num_vertices_ ? Degree(layer, v) : 0;
      while (ap < add_dir.size() && add_dir[ap].first == v) {
        ++deg;
        ++ap;
      }
      while (rp < rem_dir.size() && rem_dir[rp].first == v) {
        --deg;
        ++rp;
      }
      MLCORE_DCHECK(deg >= 0);
      dst.offsets[static_cast<size_t>(v) + 1] =
          dst.offsets[static_cast<size_t>(v)] + deg;
    }
    dst.neighbors.resize(static_cast<size_t>(dst.offsets.back()));
    ap = rp = 0;
    for (VertexId v = 0; v < new_n; ++v) {
      // Three-way sorted sweep: old neighbours minus removals, merged with
      // additions; every sequence is sorted by destination id, so the
      // output list is emitted sorted.
      auto old_nbrs = v < num_vertices_ ? Neighbors(layer, v)
                                        : std::span<const VertexId>();
      size_t oi = 0;
      int64_t pos = dst.offsets[static_cast<size_t>(v)];
      while (oi < old_nbrs.size()) {
        const VertexId u = old_nbrs[oi];
        if (rp < rem_dir.size() && rem_dir[rp].first == v &&
            rem_dir[rp].second == u) {
          ++rp;
          ++oi;
          continue;
        }
        while (ap < add_dir.size() && add_dir[ap].first == v &&
               add_dir[ap].second < u) {
          dst.neighbors[static_cast<size_t>(pos++)] = add_dir[ap++].second;
        }
        dst.neighbors[static_cast<size_t>(pos++)] = u;
        ++oi;
      }
      while (ap < add_dir.size() && add_dir[ap].first == v) {
        dst.neighbors[static_cast<size_t>(pos++)] = add_dir[ap++].second;
      }
      MLCORE_DCHECK(pos == dst.offsets[static_cast<size_t>(v) + 1]);
    }
  }
  return out;
}

MultiLayerGraph MultiLayerGraph::SelectLayers(const LayerSet& layers) const {
  MultiLayerGraph out;
  out.num_vertices_ = num_vertices_;
  out.layers_.reserve(layers.size());
  for (LayerId layer : layers) {
    MLCORE_DCHECK(layer >= 0 && layer < NumLayers());
    out.layers_.push_back(layers_[static_cast<size_t>(layer)]);
  }
  return out;
}

VertexSet AllVertices(const MultiLayerGraph& graph) {
  VertexSet all(static_cast<size_t>(graph.NumVertices()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    all[static_cast<size_t>(v)] = v;
  }
  return all;
}

LayerSet AllLayers(const MultiLayerGraph& graph) {
  LayerSet all(static_cast<size_t>(graph.NumLayers()));
  for (LayerId i = 0; i < graph.NumLayers(); ++i) {
    all[static_cast<size_t>(i)] = i;
  }
  return all;
}

VertexSet IntersectSorted(const VertexSet& a, const VertexSet& b) {
  VertexSet out;
  IntersectSortedInto(a, b, &out);
  return out;
}

void IntersectSortedInto(const VertexSet& a, const VertexSet& b,
                         VertexSet* out) {
  out->clear();
  out->reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(*out));
}

VertexSet UnionSorted(const VertexSet& a, const VertexSet& b) {
  VertexSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool IsSubsetSorted(const VertexSet& a, const VertexSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace mlcore
