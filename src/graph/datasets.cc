#include "graph/datasets.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "graph/io.h"
#include "util/check.h"
#include "util/rng.h"

namespace mlcore {

namespace {

struct DatasetSpec {
  const char* name;
  int32_t num_vertices;
  int32_t num_layers;
  int num_communities;
  int community_size_min;
  int community_size_max;
  double background_avg_degree;
  // Community density band. PPI/Author carry near-clique communities (the
  // paper's quasi-clique comparison requires γ=0.8 quasi-cliques to exist
  // on ≥ l/2 layers); the scaled large graphs use a looser band.
  double internal_prob_min;
  double internal_prob_max;
  int community_layers_min;
  // All-layer community share and size cap: controls how large the cores
  // at s ≈ l are (the paper's Stack/Wiki covers shrink to 10^0–10^3 there).
  double all_layers_fraction;
  int all_layers_size_cap;
  uint64_t seed;
  bool with_complexes;
};

// Layer counts match the paper's Fig 12 (PPI 8, Author 10, German 14,
// Wiki 24, English 15, Stack 24). Vertex counts for the four large graphs
// are scaled to laptop size; PPI and Author match the paper exactly.
constexpr DatasetSpec kSpecs[] = {
    {"ppi", 328, 8, 14, 8, 26, 2.2, 0.85, 0.97, 4, 0.15, 0,
     0x9e3779b97f4a7c15ULL, true},
    {"author", 1017, 10, 18, 10, 34, 2.0, 0.85, 0.97, 5, 0.15, 0,
     0xbf58476d1ce4e5b9ULL, false},
    {"german", 40000, 14, 40, 30, 90, 2.0, 0.45, 0.75, 2, 0.12, 0,
     0x94d049bb133111ebULL, false},
    {"wiki", 60000, 24, 50, 30, 90, 1.4, 0.45, 0.75, 2, 0.05, 45,
     0xd6e8feb86659fd93ULL, false},
    {"english", 90000, 15, 60, 30, 100, 1.8, 0.45, 0.75, 2, 0.10, 60,
     0xa5a5a5a55a5a5a5aULL, false},
    {"stack", 130000, 24, 70, 30, 110, 2.2, 0.45, 0.75, 2, 0.05, 45,
     0xc2b2ae3d27d4eb4fULL, false},
};

const DatasetSpec* FindSpec(const std::string& name) {
  for (const auto& spec : kSpecs) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

// Derives planted "protein complexes" (Fig 32 ground truth) as dense
// sub-groups of planted communities: each complex is a 3..8-vertex subset of
// a community, so it is densely connected on the community's layers by
// construction — exactly the property the MIPS complexes have on PPI.
std::vector<VertexSet> DeriveComplexes(
    const std::vector<PlantedCommunity>& communities, uint64_t seed) {
  Rng rng(seed ^ 0x5bf03635ULL);
  std::vector<VertexSet> complexes;
  for (const auto& community : communities) {
    int count = static_cast<int>(rng.Uniform(1, 2));
    for (int c = 0; c < count; ++c) {
      auto size = static_cast<size_t>(rng.Uniform(3, 8));
      if (size > community.vertices.size()) size = community.vertices.size();
      VertexSet shuffled = community.vertices;
      std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
      shuffled.resize(size);
      std::sort(shuffled.begin(), shuffled.end());
      complexes.push_back(std::move(shuffled));
    }
  }
  return complexes;
}

}  // namespace

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  for (const auto& spec : kSpecs) names.emplace_back(spec.name);
  return names;
}

Dataset MakeDataset(const std::string& name, double scale) {
  const DatasetSpec* spec = FindSpec(name);
  MLCORE_CHECK_MSG(spec != nullptr, ("unknown dataset: " + name).c_str());
  MLCORE_CHECK(scale > 0.0 && scale <= 1.0);

  PlantedGraphConfig config;
  config.num_vertices = std::max<int32_t>(
      static_cast<int32_t>(std::lround(spec->num_vertices * scale)), 64);
  config.num_layers = spec->num_layers;
  config.num_communities = std::max<int>(
      static_cast<int>(std::lround(spec->num_communities * scale)), 4);
  config.community_size_min = spec->community_size_min;
  config.community_size_max = spec->community_size_max;
  config.background_avg_degree = spec->background_avg_degree;
  config.internal_prob_min = spec->internal_prob_min;
  config.internal_prob_max = spec->internal_prob_max;
  config.community_layers_min = spec->community_layers_min;
  config.all_layers_fraction = spec->all_layers_fraction;
  config.all_layers_size_cap = spec->all_layers_size_cap;
  config.seed = spec->seed;

  PlantedGraph planted = GeneratePlanted(config);

  Dataset dataset;
  dataset.name = name;
  dataset.graph = std::move(planted.graph);
  dataset.communities = std::move(planted.communities);
  if (spec->with_complexes) {
    dataset.complexes = DeriveComplexes(dataset.communities, spec->seed);
  }
  return dataset;
}

bool SaveDataset(const Dataset& dataset, const std::string& path) {
  if (!SaveMultiLayerGraphBinary(dataset.graph, path + ".graph").ok) {
    return false;
  }
  std::ofstream meta(path + ".meta");
  if (!meta) return false;
  meta << dataset.name << "\n";
  meta << dataset.communities.size() << "\n";
  for (const auto& community : dataset.communities) {
    meta << community.internal_prob << " " << community.layers.size();
    for (LayerId layer : community.layers) meta << " " << layer;
    meta << " " << community.vertices.size();
    for (VertexId v : community.vertices) meta << " " << v;
    meta << "\n";
  }
  meta << dataset.complexes.size() << "\n";
  for (const auto& complex : dataset.complexes) {
    meta << complex.size();
    for (VertexId v : complex) meta << " " << v;
    meta << "\n";
  }
  return static_cast<bool>(meta);
}

bool LoadDataset(const std::string& path, Dataset* dataset) {
  if (!LoadMultiLayerGraphBinary(path + ".graph", &dataset->graph).ok) {
    return false;
  }
  std::ifstream meta(path + ".meta");
  if (!meta) return false;
  size_t community_count = 0;
  if (!(meta >> dataset->name >> community_count)) return false;
  dataset->communities.clear();
  dataset->complexes.clear();
  for (size_t c = 0; c < community_count; ++c) {
    PlantedCommunity community;
    size_t layer_count = 0, vertex_count = 0;
    if (!(meta >> community.internal_prob >> layer_count)) return false;
    community.layers.resize(layer_count);
    for (auto& layer : community.layers) {
      if (!(meta >> layer)) return false;
    }
    if (!(meta >> vertex_count)) return false;
    community.vertices.resize(vertex_count);
    for (auto& v : community.vertices) {
      if (!(meta >> v)) return false;
    }
    dataset->communities.push_back(std::move(community));
  }
  size_t complex_count = 0;
  if (!(meta >> complex_count)) return false;
  for (size_t c = 0; c < complex_count; ++c) {
    size_t vertex_count = 0;
    if (!(meta >> vertex_count)) return false;
    VertexSet complex(vertex_count);
    for (auto& v : complex) {
      if (!(meta >> v)) return false;
    }
    dataset->complexes.push_back(std::move(complex));
  }
  return true;
}

}  // namespace mlcore
