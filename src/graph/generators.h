#ifndef MLCORE_GRAPH_GENERATORS_H_
#define MLCORE_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// A dense vertex group planted by the synthetic generator. On every layer
/// in `layers` each internal vertex pair is connected with probability
/// `internal_prob`, so the group forms a d-CC-like structure for d up to
/// roughly `internal_prob * (|vertices| - 1)`.
struct PlantedCommunity {
  VertexSet vertices;   // sorted
  LayerSet layers;      // sorted; layers on which the community is dense
  double internal_prob = 0.5;
};

/// Configuration of the planted multi-layer community model used to stand in
/// for the paper's real-world datasets (see DESIGN.md §5). The model
/// reproduces the drivers of the DCCS algorithms' behaviour: overlapping
/// dense cores recurring on layer subsets, heavy-tailed sparse background,
/// and per-layer d-cores that are small relative to |V|.
struct PlantedGraphConfig {
  int32_t num_vertices = 1000;
  int32_t num_layers = 8;

  int num_communities = 12;
  int community_size_min = 12;
  int community_size_max = 40;
  /// Fraction of communities active on *all* layers (keeps F_{d,s} non-empty
  /// even for s = l, which the large-s experiments sweep over).
  double all_layers_fraction = 0.15;
  /// Size cap for all-layer communities (0 = community_size_max). The
  /// paper's large graphs have tiny cores at s close to l (Fig 17 covers of
  /// 10^0–10^3 on Stack); capping keeps the stand-ins in that regime.
  int all_layers_size_cap = 0;
  /// Other communities are active on a uniform-size random layer subset of
  /// at least this many layers.
  int community_layers_min = 2;
  double internal_prob_min = 0.45;
  double internal_prob_max = 0.75;
  /// Fraction of community vertices drawn from a shared "hub pool"
  /// (|pool| = num_vertices / 10); creates the heavy overlap between d-CCs
  /// that motivates diversified search (paper §I).
  double hub_overlap_fraction = 0.4;

  /// Average background degree per layer (Erdős–Rényi-like with skewed
  /// endpoint selection, producing a heavy-tailed degree sequence).
  double background_avg_degree = 2.0;
  double background_skew = 0.35;

  uint64_t seed = 1;
};

struct PlantedGraph {
  MultiLayerGraph graph;
  std::vector<PlantedCommunity> communities;
};

/// Generates a multi-layer graph from the planted community model.
/// Deterministic for a fixed config (including seed).
PlantedGraph GeneratePlanted(const PlantedGraphConfig& config);

/// Plain multi-layer Erdős–Rényi graph: every pair appears on every layer
/// independently with probability `p`. Used by randomized unit tests.
MultiLayerGraph GenerateErdosRenyi(int32_t num_vertices, int32_t num_layers,
                                   double p, uint64_t seed);

}  // namespace mlcore

#endif  // MLCORE_GRAPH_GENERATORS_H_
