#include "graph/sampling.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace mlcore {

MultiLayerGraph SampleVertices(const MultiLayerGraph& graph, double p,
                               uint64_t seed) {
  MLCORE_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return graph;
  const auto n = static_cast<size_t>(graph.NumVertices());
  auto keep_count = static_cast<size_t>(p * static_cast<double>(n));
  if (keep_count == 0) keep_count = 1;

  std::vector<VertexId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  Rng rng(seed);
  std::shuffle(ids.begin(), ids.end(), rng.engine());
  ids.resize(keep_count);
  std::sort(ids.begin(), ids.end());
  return graph.InducedSubgraph(ids, nullptr);
}

MultiLayerGraph SampleLayers(const MultiLayerGraph& graph, double q,
                             uint64_t seed) {
  MLCORE_CHECK(q > 0.0 && q <= 1.0);
  if (q >= 1.0) return graph;
  const auto l = static_cast<size_t>(graph.NumLayers());
  auto keep_count = static_cast<size_t>(q * static_cast<double>(l));
  if (keep_count == 0) keep_count = 1;

  std::vector<LayerId> ids(l);
  std::iota(ids.begin(), ids.end(), 0);
  Rng rng(seed);
  std::shuffle(ids.begin(), ids.end(), rng.engine());
  ids.resize(keep_count);
  std::sort(ids.begin(), ids.end());
  return graph.SelectLayers(ids);
}

}  // namespace mlcore
