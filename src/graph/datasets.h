#ifndef MLCORE_GRAPH_DATASETS_H_
#define MLCORE_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// A named evaluation dataset: the multi-layer graph plus the generator's
/// ground truth (planted communities, and for the PPI stand-in, planted
/// protein complexes used by the Fig 32 experiment).
struct Dataset {
  std::string name;
  MultiLayerGraph graph;
  std::vector<PlantedCommunity> communities;
  /// Small dense vertex groups standing in for MIPS protein complexes
  /// (subsets of planted communities). Empty for non-PPI datasets.
  std::vector<VertexSet> complexes;
};

/// Names of the six paper datasets (Fig 12): ppi, author, german, wiki,
/// english, stack. The large four are scaled synthetic stand-ins (see
/// DESIGN.md §6): layer counts match the paper exactly; vertex counts are
/// scaled to laptop size.
std::vector<std::string> DatasetNames();

/// Builds the named dataset deterministically. `scale` in (0, 1] shrinks the
/// vertex count (and proportionally the planted structure) for quick runs;
/// scale = 1 reproduces the benchmark configuration.
Dataset MakeDataset(const std::string& name, double scale = 1.0);

/// Serialises a dataset (graph in the binary format of graph/io.h, plus
/// the planted ground truth) to `path` / loads it back. Returns false on
/// any I/O or format error. Used by the benchmark harness to avoid
/// regenerating the large datasets in every figure binary.
bool SaveDataset(const Dataset& dataset, const std::string& path);
bool LoadDataset(const std::string& path, Dataset* dataset);

}  // namespace mlcore

#endif  // MLCORE_GRAPH_DATASETS_H_
