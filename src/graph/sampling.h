#ifndef MLCORE_GRAPH_SAMPLING_H_
#define MLCORE_GRAPH_SAMPLING_H_

#include <cstdint>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Induced subgraph on a uniformly random fraction `p` of the vertices
/// (paper §VI scalability parameter p). Deterministic for a fixed seed.
MultiLayerGraph SampleVertices(const MultiLayerGraph& graph, double p,
                               uint64_t seed);

/// Restriction to a uniformly random fraction `q` of the layers
/// (paper §VI scalability parameter q). Deterministic for a fixed seed.
MultiLayerGraph SampleLayers(const MultiLayerGraph& graph, double q,
                             uint64_t seed);

}  // namespace mlcore

#endif  // MLCORE_GRAPH_SAMPLING_H_
