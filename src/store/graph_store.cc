#include "store/graph_store.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"
#include "util/timing.h"

namespace mlcore {

namespace {

std::string EdgeName(LayerId layer, VertexId u, VertexId v) {
  return "edge " + std::to_string(u) + "-" + std::to_string(v) +
         " on layer " + std::to_string(layer);
}

}  // namespace

/// Validated, canonicalised form of an UpdateBatch: per-layer sorted
/// (u < v) edge lists, with vertex removals expanded into the removal of
/// every incident edge.
struct GraphStore::NormalizedBatch {
  int32_t add_vertices = 0;
  VertexSet removed_vertices;
  std::vector<MultiLayerGraph::EdgeList> added;
  std::vector<MultiLayerGraph::EdgeList> removed;
  int64_t edges_inserted = 0;
  int64_t edges_removed = 0;
};

GraphStore::GraphStore(MultiLayerGraph initial, Options options)
    : GraphStore(std::make_shared<const MultiLayerGraph>(std::move(initial)),
                 std::move(options)) {}

GraphStore::GraphStore(std::shared_ptr<const MultiLayerGraph> initial,
                       Options options)
    : options_(std::move(options)) {
  // Construction-time API misuse, not reachable from a validated Engine
  // request; aborting beats dereferencing null for the store's lifetime.
  MLCORE_CHECK(initial != nullptr);  // NOLINT(mlcore-release-check): ctor contract
  // d <= 0 is dropped: the 0-core is trivially every vertex, so there is
  // nothing to maintain (and fresh isolated vertices would make the
  // incremental bookkeeping lie).
  tracked_degrees_ = options_.tracked_degrees;
  std::erase_if(tracked_degrees_, [](int d) { return d <= 0; });
  std::sort(tracked_degrees_.begin(), tracked_degrees_.end());
  tracked_degrees_.erase(
      std::unique(tracked_degrees_.begin(), tracked_degrees_.end()),
      tracked_degrees_.end());

  auto snap = std::make_shared<GraphSnapshot>();
  snap->epoch_ = 0;
  snap->graph_ = std::move(initial);
  const MultiLayerGraph& graph = *snap->graph_;
  num_layers_ = graph.NumLayers();
  snap->layer_gens_.assign(static_cast<size_t>(graph.NumLayers()), 0);

  const VertexSet all = AllVertices(graph);
  maintainers_.reserve(tracked_degrees_.size());
  snap->tracked_.reserve(tracked_degrees_.size());
  for (int d : tracked_degrees_) {
    maintainers_.push_back(
        std::make_unique<DecrementalCoreMaintainer>(graph, d, all));
    const DecrementalCoreMaintainer& m = *maintainers_.back();
    TrackedCores tc;
    tc.d = d;
    tc.generation = 0;
    tc.cores.reserve(static_cast<size_t>(graph.NumLayers()));
    for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
      tc.cores.push_back(
          std::make_shared<const VertexSet>(m.CoreMembers(layer)));
    }
    auto support =
        std::make_shared<std::vector<int>>(static_cast<size_t>(
            graph.NumVertices()));
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      (*support)[static_cast<size_t>(v)] = m.Support(v);
    }
    tc.support = std::move(support);
    snap->tracked_.push_back(std::move(tc));
  }
  current_ = std::move(snap);

  metrics_.epoch = registry_.GetGauge("store.epoch");
  metrics_.apply_update_ms = registry_.GetHistogram(
      "store.apply_update_ms", obs::Histogram::LatencyBoundsMs());
  metrics_.apply_update_ms_global = obs::Registry::Global().GetHistogram(
      "store.apply_update_ms", obs::Histogram::LatencyBoundsMs());
  metrics_.listener_notify_ms = registry_.GetHistogram(
      "store.listener_notify_ms", obs::Histogram::LatencyBoundsMs());
  metrics_.listener_notify_ms_global = obs::Registry::Global().GetHistogram(
      "store.listener_notify_ms", obs::Histogram::LatencyBoundsMs());
}

std::shared_ptr<const GraphSnapshot> GraphStore::snapshot() const {
  util::MutexLock lock(snapshot_mu_);
  return current_;
}

uint64_t GraphStore::epoch() const {
  util::MutexLock lock(snapshot_mu_);
  return current_->epoch_;
}

const MultiLayerGraph& GraphStore::current_graph() const {
  util::MutexLock lock(snapshot_mu_);
  return *current_->graph_;
}

uint64_t GraphStore::AddEpochListener(EpochListener listener) {
  // Registration-time API misuse (not a request path): a null listener
  // would crash every subsequent ApplyUpdate instead of the caller.
  MLCORE_CHECK(listener != nullptr);  // NOLINT(mlcore-release-check): registration contract
  util::MutexLock lock(listeners_mu_);
  const uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void GraphStore::RemoveEpochListener(uint64_t id) {
  // Taking listeners_mu_ is the whole synchronisation: ApplyUpdate invokes
  // listeners under it, so by the time the erase below runs no invocation
  // of `id` is in flight and none can start.
  util::MutexLock lock(listeners_mu_);
  std::erase_if(listeners_, [id](const auto& entry) {
    return entry.first == id;
  });
}

StoreStats GraphStore::stats() const {
  util::MutexLock lock(stats_mu_);
  return stats_;
}

int64_t GraphStore::DamageThreshold(int32_t num_vertices) const {
  if (options_.recore_damage_threshold > 0) {
    return options_.recore_damage_threshold;
  }
  if (options_.recore_damage_threshold < 0) return -1;  // force full path
  return std::max<int64_t>(64, num_vertices / 8);
}

Status GraphStore::Normalize(const GraphSnapshot& base,
                             const UpdateBatch& batch,
                             NormalizedBatch* out) const {
  const MultiLayerGraph& graph = base.graph();
  const int32_t n_old = graph.NumVertices();
  const int32_t l = graph.NumLayers();

  if (batch.add_vertices < 0) {
    return Status::InvalidArgument("add_vertices must be >= 0, got " +
                                   std::to_string(batch.add_vertices));
  }
  out->add_vertices = batch.add_vertices;
  const int32_t n_new = n_old + batch.add_vertices;

  out->removed_vertices = batch.remove_vertices;
  std::sort(out->removed_vertices.begin(), out->removed_vertices.end());
  out->removed_vertices.erase(std::unique(out->removed_vertices.begin(),
                                          out->removed_vertices.end()),
                              out->removed_vertices.end());
  for (VertexId v : out->removed_vertices) {
    if (v < 0 || v >= n_old) {
      return Status::InvalidArgument(
          "remove_vertices: vertex " + std::to_string(v) + " outside [0, " +
          std::to_string(n_old) + ")");
    }
  }
  std::vector<uint8_t> is_removed(static_cast<size_t>(n_old), 0);
  for (VertexId v : out->removed_vertices) {
    is_removed[static_cast<size_t>(v)] = 1;
  }

  out->added.assign(static_cast<size_t>(l), {});
  out->removed.assign(static_cast<size_t>(l), {});

  auto check_edge = [&](const char* kind, size_t index, const EdgeUpdate& e,
                        int32_t max_vertex) -> Status {
    const std::string where =
        std::string(kind) + "[" + std::to_string(index) + "]: ";
    if (e.layer < 0 || e.layer >= l) {
      return Status::InvalidArgument(where + "layer " +
                                     std::to_string(e.layer) +
                                     " outside [0, " + std::to_string(l) + ")");
    }
    if (e.u < 0 || e.u >= max_vertex || e.v < 0 || e.v >= max_vertex) {
      return Status::InvalidArgument(
          where + EdgeName(e.layer, e.u, e.v) + " references a vertex " +
          "outside [0, " + std::to_string(max_vertex) + ")");
    }
    if (e.u == e.v) {
      return Status::InvalidArgument(where + "self-loop " +
                                     std::to_string(e.u) + "-" +
                                     std::to_string(e.v) + " on layer " +
                                     std::to_string(e.layer));
    }
    const VertexId lo = std::min(e.u, e.v), hi = std::max(e.u, e.v);
    if ((lo < n_old && is_removed[static_cast<size_t>(lo)] != 0) ||
        (hi < n_old && is_removed[static_cast<size_t>(hi)] != 0)) {
      return Status::InvalidArgument(
          where + EdgeName(e.layer, lo, hi) +
          " touches a vertex removed in the same batch");
    }
    return Status::Ok();
  };

  for (size_t i = 0; i < batch.remove_edges.size(); ++i) {
    const EdgeUpdate& e = batch.remove_edges[i];
    Status status = check_edge("remove_edges", i, e, n_old);
    if (!status.ok()) return status;
    const VertexId lo = std::min(e.u, e.v), hi = std::max(e.u, e.v);
    if (!graph.HasEdge(e.layer, lo, hi)) {
      return Status::InvalidArgument("remove_edges[" + std::to_string(i) +
                                     "]: " + EdgeName(e.layer, lo, hi) +
                                     " does not exist");
    }
    out->removed[static_cast<size_t>(e.layer)].emplace_back(lo, hi);
  }
  for (size_t i = 0; i < batch.insert_edges.size(); ++i) {
    const EdgeUpdate& e = batch.insert_edges[i];
    Status status = check_edge("insert_edges", i, e, n_new);
    if (!status.ok()) return status;
    const VertexId lo = std::min(e.u, e.v), hi = std::max(e.u, e.v);
    if (hi < n_old && graph.HasEdge(e.layer, lo, hi)) {
      return Status::InvalidArgument("insert_edges[" + std::to_string(i) +
                                     "]: " + EdgeName(e.layer, lo, hi) +
                                     " already exists");
    }
    out->added[static_cast<size_t>(e.layer)].emplace_back(lo, hi);
  }

  for (LayerId layer = 0; layer < l; ++layer) {
    auto& add = out->added[static_cast<size_t>(layer)];
    auto& rem = out->removed[static_cast<size_t>(layer)];
    std::sort(add.begin(), add.end());
    std::sort(rem.begin(), rem.end());
    if (auto it = std::adjacent_find(add.begin(), add.end());
        it != add.end()) {
      return Status::InvalidArgument(
          "duplicate insert of " + EdgeName(layer, it->first, it->second));
    }
    if (auto it = std::adjacent_find(rem.begin(), rem.end());
        it != rem.end()) {
      return Status::InvalidArgument(
          "duplicate remove of " + EdgeName(layer, it->first, it->second));
    }
    MultiLayerGraph::EdgeList conflict;
    std::set_intersection(add.begin(), add.end(), rem.begin(), rem.end(),
                          std::back_inserter(conflict));
    if (!conflict.empty()) {
      return Status::InvalidArgument(
          EdgeName(layer, conflict[0].first, conflict[0].second) +
          " is both inserted and removed in one batch");
    }
    out->edges_inserted += static_cast<int64_t>(add.size());
    out->edges_removed += static_cast<int64_t>(rem.size());
  }

  // Expand vertex removals into the removal of every incident edge. When
  // both endpoints are being removed only the lower id contributes the
  // edge; explicit remove_edges touching removed vertices were rejected
  // above, so no collision is possible.
  if (!out->removed_vertices.empty()) {
    std::vector<uint8_t> layer_dirty(static_cast<size_t>(l), 0);
    for (VertexId v : out->removed_vertices) {
      for (LayerId layer = 0; layer < l; ++layer) {
        auto& rem = out->removed[static_cast<size_t>(layer)];
        for (VertexId u : graph.Neighbors(layer, v)) {
          if (is_removed[static_cast<size_t>(u)] != 0 && u < v) continue;
          rem.emplace_back(std::min(u, v), std::max(u, v));
          ++out->edges_removed;
          layer_dirty[static_cast<size_t>(layer)] = 1;
        }
      }
    }
    // One sort per touched layer, after the whole expansion — inside the
    // loop it would be O(removed vertices × list length × log).
    for (LayerId layer = 0; layer < l; ++layer) {
      if (layer_dirty[static_cast<size_t>(layer)] != 0) {
        auto& rem = out->removed[static_cast<size_t>(layer)];
        std::sort(rem.begin(), rem.end());
      }
    }
  }
  return Status::Ok();
}

Expected<UpdateOutcome> GraphStore::ApplyUpdate(const UpdateBatch& batch) {
  util::MutexLock update_lock(update_mu_);
  std::shared_ptr<const GraphSnapshot> base = snapshot();

  if (batch.empty()) {
    UpdateOutcome outcome;
    outcome.epoch = base->epoch_;
    return outcome;
  }

  WallTimer timer;
  NormalizedBatch norm;
  Status status = Normalize(*base, batch, &norm);
  if (!status.ok()) {
    util::MutexLock stats_lock(stats_mu_);
    ++stats_.batches_rejected;
    return status;
  }

  const MultiLayerGraph& old_graph = base->graph();
  const int32_t l = old_graph.NumLayers();
  const int32_t n_new = old_graph.NumVertices() + norm.add_vertices;
  auto new_graph = std::make_shared<const MultiLayerGraph>(
      old_graph.EditedCopy(norm.add_vertices, norm.added, norm.removed));

  UpdateOutcome outcome;
  outcome.vertices_added = norm.add_vertices;
  outcome.vertices_removed =
      static_cast<int32_t>(norm.removed_vertices.size());
  outcome.edges_inserted = norm.edges_inserted;
  outcome.edges_removed = norm.edges_removed;

  const uint64_t new_epoch = base->epoch_ + 1;
  auto next = std::make_shared<GraphSnapshot>();
  next->epoch_ = new_epoch;
  next->graph_ = new_graph;
  next->layer_gens_ = base->layer_gens_;
  for (LayerId layer = 0; layer < l; ++layer) {
    if (!norm.added[static_cast<size_t>(layer)].empty() ||
        !norm.removed[static_cast<size_t>(layer)].empty()) {
      next->layer_gens_[static_cast<size_t>(layer)] = new_epoch;
    }
  }

  // Incremental per-layer core maintenance for every tracked degree:
  // deletion cascades run against the still-bound old graph (minus the
  // removed edges), then the maintainer rebinds to the new epoch's graph
  // for the insertion re-coring.
  const int64_t damage_threshold = DamageThreshold(n_new);
  next->tracked_.reserve(tracked_degrees_.size());
  for (size_t t = 0; t < tracked_degrees_.size(); ++t) {
    DecrementalCoreMaintainer& m = *maintainers_[t];
    const TrackedCores& prev = base->tracked_[t];
    bool affects = norm.add_vertices > 0;
    int64_t d_exits = 0, d_entries = 0;
    std::vector<uint8_t> layer_changed(static_cast<size_t>(l), 0);

    for (LayerId layer = 0; layer < l; ++layer) {
      const auto& rem = norm.removed[static_cast<size_t>(layer)];
      if (rem.empty()) continue;
      const auto ro = m.RemoveEdges(layer, rem, nullptr);
      d_exits += ro.exited;
      affects |= ro.core_subgraph_changed;
      if (ro.exited > 0) layer_changed[static_cast<size_t>(layer)] = 1;
      ++outcome.incremental_layer_updates;
    }
    if (norm.add_vertices > 0) m.GrowVertices(n_new);
    m.Rebind(new_graph.get());
    for (LayerId layer = 0; layer < l; ++layer) {
      const auto& add = norm.added[static_cast<size_t>(layer)];
      if (add.empty()) continue;
      const auto io = m.InsertEdges(layer, add, damage_threshold, nullptr);
      d_entries += io.entered;
      affects |= io.core_subgraph_changed;
      if (io.entered > 0) layer_changed[static_cast<size_t>(layer)] = 1;
      if (io.recomputed) {
        ++outcome.full_layer_recomputes;
      } else {
        ++outcome.incremental_layer_updates;
      }
    }
    outcome.core_exits += d_exits;
    outcome.core_entries += d_entries;

    TrackedCores tc;
    tc.d = tracked_degrees_[t];
    tc.generation = affects ? new_epoch : prev.generation;
    tc.cores.reserve(static_cast<size_t>(l));
    for (LayerId layer = 0; layer < l; ++layer) {
      if (layer_changed[static_cast<size_t>(layer)] != 0) {
        tc.cores.push_back(
            std::make_shared<const VertexSet>(m.CoreMembers(layer)));
      } else {
        tc.cores.push_back(prev.cores[static_cast<size_t>(layer)]);
      }
    }
    if (d_exits > 0 || d_entries > 0 || norm.add_vertices > 0) {
      auto support =
          std::make_shared<std::vector<int>>(static_cast<size_t>(n_new));
      for (VertexId v = 0; v < n_new; ++v) {
        (*support)[static_cast<size_t>(v)] = m.Support(v);
      }
      tc.support = std::move(support);
    } else {
      tc.support = prev.support;
    }
    next->tracked_.push_back(std::move(tc));
  }

  {
    util::MutexLock snapshot_lock(snapshot_mu_);
    current_ = next;
  }

  outcome.epoch = new_epoch;
  outcome.seconds = timer.Seconds();
  metrics_.epoch->Set(static_cast<int64_t>(new_epoch));
  metrics_.apply_update_ms->Record(outcome.seconds * 1e3);
  metrics_.apply_update_ms_global->Record(outcome.seconds * 1e3);
  {
    util::MutexLock stats_lock(stats_mu_);
    ++stats_.batches_applied;
    stats_.edges_inserted += outcome.edges_inserted;
    stats_.edges_removed += outcome.edges_removed;
    stats_.vertices_added += outcome.vertices_added;
    stats_.vertices_removed += outcome.vertices_removed;
    stats_.core_exits += outcome.core_exits;
    stats_.core_entries += outcome.core_entries;
    stats_.incremental_layer_updates += outcome.incremental_layer_updates;
    stats_.full_layer_recomputes += outcome.full_layer_recomputes;
  }

  // Notify epoch listeners (still under update_mu_, so they observe
  // epochs in publication order; see EpochListener for the contract).
  // Sweep latency is the "epoch publish" stage of the subscription
  // pipeline: the listeners only flag engines, so a slow sweep means a
  // listener is violating its cheapness contract.
  {
    WallTimer notify_timer;
    {
      util::MutexLock listeners_lock(listeners_mu_);
      for (const auto& [id, listener] : listeners_) listener(next);
    }
    metrics_.listener_notify_ms->Record(notify_timer.Millis());
    metrics_.listener_notify_ms_global->Record(notify_timer.Millis());
  }
  return outcome;
}

}  // namespace mlcore
