#ifndef MLCORE_STORE_GRAPH_STORE_H_
#define MLCORE_STORE_GRAPH_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "dynamic/decremental_core.h"
#include "graph/multilayer_graph.h"
#include "obs/metrics.h"
#include "service/status.h"
#include "store/update.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mlcore {

/// Per-layer d-cores (and their supports Num(v)) maintained incrementally
/// for one tracked degree threshold, as materialised into a snapshot.
/// Layers whose core did not change between epochs share the previous
/// snapshot's vertex sets.
struct TrackedCores {
  int d = 0;
  /// Epoch of the last change to any layer's *core-induced subgraph* at
  /// this d: core membership changed, an edited edge had both endpoints
  /// inside a layer's core, or the vertex-id space grew. The engine keys
  /// its (d, s, vertex_deletion) preprocessing entries on this — DCCS
  /// results provably depend only on the per-layer core subgraphs
  /// (DESIGN.md §8), so updates that never touch them keep warm caches.
  uint64_t generation = 0;
  std::vector<std::shared_ptr<const VertexSet>> cores;  // indexed by layer
  std::shared_ptr<const std::vector<int>> support;      // Num(v), size n
};

/// One immutable epoch of an evolving multi-layer graph (DESIGN.md §8).
/// Published atomically by `GraphStore::ApplyUpdate`; queries pin the
/// snapshot they start on via shared_ptr and are never disturbed by later
/// epochs (MVCC).
class GraphSnapshot {
 public:
  uint64_t epoch() const { return epoch_; }
  const MultiLayerGraph& graph() const { return *graph_; }
  const std::shared_ptr<const MultiLayerGraph>& graph_ptr() const {
    return graph_;
  }

  /// Epoch at which `layer`'s edge set last changed (0 = initial).
  uint64_t layer_generation(LayerId layer) const {
    return layer_gens_[static_cast<size_t>(layer)];
  }

  /// Maintained cores for a tracked degree, or nullptr when `d` is not
  /// tracked by the owning store.
  const TrackedCores* tracked(int d) const {
    for (const auto& t : tracked_) {
      if (t.d == d) return &t;
    }
    return nullptr;
  }

  /// Cache-invalidation key for everything derived from the per-layer
  /// d-cores at `d`: the tracked core-subgraph generation when `d` is
  /// tracked, else this epoch (conservative — any change invalidates).
  uint64_t core_generation(int d) const {
    const TrackedCores* t = tracked(d);
    return t != nullptr ? t->generation : epoch_;
  }

 private:
  friend class GraphStore;

  uint64_t epoch_ = 0;
  std::shared_ptr<const MultiLayerGraph> graph_;
  std::vector<uint64_t> layer_gens_;
  std::vector<TrackedCores> tracked_;
};

/// Host for an *evolving* multi-layer graph behind epoch-versioned
/// immutable snapshots (DESIGN.md §8).
///
/// `ApplyUpdate` accepts batched per-layer edge insertions/deletions and
/// vertex add/removes, validates the whole batch up front (a rejected
/// batch changes nothing), builds the next graph epoch via
/// `MultiLayerGraph::EditedCopy` (unchanged layers copied verbatim), and
/// publishes it atomically. Readers obtain `snapshot()` and keep using it
/// for as long as they like — in-flight queries never observe a torn or
/// shifting graph.
///
/// For every degree in `Options::tracked_degrees` the store maintains all
/// per-layer d-cores and supports Num(v) *incrementally* across epochs:
/// deletions cascade core exits through `DecrementalCoreMaintainer`
/// (O(affected edges)); insertions re-core only the affected region,
/// falling back to a full per-layer recomputation past
/// `Options::recore_damage_threshold`. The maintained cores are exact —
/// bit-identical to a from-scratch `DCore`/`CoreDecomposition` of the
/// snapshot graph at every epoch (tests/update_oracle_test.cc) — and are
/// served to the `Engine` as warm base-core caches.
///
/// Thread safety: `ApplyUpdate` calls are serialised internally (one
/// writer at a time); `snapshot()`, `epoch()` and `stats()` may be called
/// concurrently from any thread.
///
/// The layer count is fixed for the store's lifetime; vertex ids grow
/// monotonically and are never recycled.
class GraphStore {
 public:
  /// Epoch-change notification (the hook behind Engine::Subscribe):
  /// invoked by `ApplyUpdate` immediately after a new epoch's snapshot is
  /// published — never for rejected or empty batches. Runs on the updating
  /// thread with the listener registry locked, so listeners must be cheap
  /// (set a flag, notify a condition variable) and must not call back into
  /// this store or register/remove listeners.
  using EpochListener =
      std::function<void(const std::shared_ptr<const GraphSnapshot>&)>;

  struct Options {
    /// Degree thresholds whose per-layer d-cores are maintained
    /// incrementally. Duplicates and negatives are ignored.
    std::vector<int> tracked_degrees;
    /// Bound on the insertion re-coring path: when a batch's affected
    /// region on one layer exceeds this many vertices, that layer's core
    /// is recomputed from scratch instead (the O(m) from-scratch
    /// decomposition stays the fallback). 0 = auto (max(64, n/8));
    /// negative = always recompute (the baseline mode benchmarks and
    /// oracle tests compare against).
    int64_t recore_damage_threshold = 0;
  };

  explicit GraphStore(MultiLayerGraph initial)
      : GraphStore(std::move(initial), Options{}) {}
  GraphStore(MultiLayerGraph initial, Options options);
  /// Shares (or borrows, via an aliasing shared_ptr) the initial graph
  /// instead of copying it.
  explicit GraphStore(std::shared_ptr<const MultiLayerGraph> initial)
      : GraphStore(std::move(initial), Options{}) {}
  GraphStore(std::shared_ptr<const MultiLayerGraph> initial, Options options);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  const Options& options() const { return options_; }

  /// Layer count — fixed for the store's lifetime (updates are per-layer
  /// edge edits; layers are never added or removed), so this needs no
  /// snapshot and is safe under any concurrency.
  int32_t num_layers() const { return num_layers_; }

  /// The current snapshot. Holding the returned pointer pins that epoch's
  /// graph (and tracked cores) for as long as desired.
  std::shared_ptr<const GraphSnapshot> snapshot() const;

  /// Epoch of the current snapshot (0 before any update).
  uint64_t epoch() const;

  /// Deprecated convenience: the current snapshot's graph. The reference
  /// is only valid until the *next* successful ApplyUpdate retires the
  /// snapshot (and every holder of it lets go) — a footgun under any
  /// concurrent writer. Hold `snapshot()` instead; it pins the epoch for
  /// as long as the caller keeps the pointer.
  [[deprecated(
      "valid only until the next ApplyUpdate; hold snapshot() instead")]]
  const MultiLayerGraph& current_graph() const;

  /// Registers an epoch-change listener (see EpochListener for the
  /// invocation contract) and returns a handle for RemoveEpochListener.
  /// Listeners registered mid-ApplyUpdate see only later epochs.
  uint64_t AddEpochListener(EpochListener listener);

  /// Unregisters a listener. Blocks until any in-flight invocation has
  /// returned: once this call completes the listener is never run again
  /// and whatever it captured may be destroyed. Unknown ids are ignored.
  void RemoveEpochListener(uint64_t id);

  /// Validates and applies `batch`, publishing a new epoch. On a
  /// validation error nothing changes and the status names the offending
  /// record. An empty batch is a no-op that publishes nothing.
  Expected<UpdateOutcome> ApplyUpdate(const UpdateBatch& batch);

  StoreStats stats() const;

  /// This store's metric registry (DESIGN.md §12): `store.epoch` gauge plus
  /// `store.apply_update_ms` / `store.listener_notify_ms` latency
  /// histograms. Latency histograms are mirrored into
  /// `obs::Registry::Global()` so process-wide exports see store latency
  /// without enumerating stores.
  const obs::Registry& registry() const { return registry_; }

 private:
  struct NormalizedBatch;

  struct Metrics {
    obs::Gauge* epoch = nullptr;
    obs::Histogram* apply_update_ms = nullptr;
    obs::Histogram* apply_update_ms_global = nullptr;
    obs::Histogram* listener_notify_ms = nullptr;
    obs::Histogram* listener_notify_ms_global = nullptr;
  };

  Status Normalize(const GraphSnapshot& base, const UpdateBatch& batch,
                   NormalizedBatch* out) const;
  int64_t DamageThreshold(int32_t num_vertices) const;

  const Options options_;
  int32_t num_layers_ = 0;

  // Writer state: maintainers mutate in place epoch to epoch, guarded by
  // update_mu_ (which also serialises ApplyUpdate itself).
  util::Mutex update_mu_{util::lock_rank::kStoreWriter,
                         "GraphStore::update_mu_"};
  // Sanitised, sorted, deduped.
  std::vector<int> tracked_degrees_ MLCORE_GUARDED_BY(update_mu_);
  std::vector<std::unique_ptr<DecrementalCoreMaintainer>> maintainers_
      MLCORE_GUARDED_BY(update_mu_);

  mutable util::Mutex snapshot_mu_{util::lock_rank::kStoreSnapshot,
                                   "GraphStore::snapshot_mu_"};
  std::shared_ptr<const GraphSnapshot> current_
      MLCORE_GUARDED_BY(snapshot_mu_);

  // Listener registry. Invocation happens under listeners_mu_ (holding the
  // lock for the whole sweep is what lets RemoveEpochListener guarantee
  // no in-flight callback survives it), after snapshot_mu_ is released —
  // listeners observe the already-published epoch.
  mutable util::Mutex listeners_mu_{util::lock_rank::kStoreListeners,
                                    "GraphStore::listeners_mu_"};
  uint64_t next_listener_id_ MLCORE_GUARDED_BY(listeners_mu_) = 1;
  std::vector<std::pair<uint64_t, EpochListener>> listeners_
      MLCORE_GUARDED_BY(listeners_mu_);

  mutable util::Mutex stats_mu_{util::lock_rank::kStoreStats,
                                "GraphStore::stats_mu_"};
  StoreStats stats_ MLCORE_GUARDED_BY(stats_mu_);

  // Declared after everything the constructor reads; metric pointers are
  // resolved once at construction and recorded through lock-free.
  obs::Registry registry_;
  Metrics metrics_;
};

}  // namespace mlcore

#endif  // MLCORE_STORE_GRAPH_STORE_H_
