#ifndef MLCORE_STORE_UPDATE_H_
#define MLCORE_STORE_UPDATE_H_

#include <cstdint>
#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// One undirected edge on one layer, as submitted by clients. Endpoint
/// order is irrelevant; the store canonicalises to u < v.
struct EdgeUpdate {
  LayerId layer = 0;
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// A batch of graph mutations applied atomically by
/// `GraphStore::ApplyUpdate` (DESIGN.md §8). Semantics, in application
/// order:
///
///   1. `add_vertices` fresh isolated vertices are appended (ids
///      [n, n + add_vertices) — ids are never recycled);
///   2. every vertex in `remove_vertices` is isolated: all its current
///      edges (on every layer) are removed. The id stays valid — a later
///      batch may attach new edges to it;
///   3. `remove_edges` are deleted (each must exist);
///   4. `insert_edges` are added (each must be absent).
///
/// A batch referencing a vertex of `remove_vertices` from an edge record
/// is rejected, as are self-loops, duplicate records and insert/remove
/// conflicts — validation happens before anything is applied, so a
/// rejected batch changes nothing.
struct UpdateBatch {
  int32_t add_vertices = 0;
  VertexSet remove_vertices;
  std::vector<EdgeUpdate> insert_edges;
  std::vector<EdgeUpdate> remove_edges;

  UpdateBatch& Insert(LayerId layer, VertexId u, VertexId v) {
    insert_edges.push_back({layer, u, v});
    return *this;
  }
  UpdateBatch& Remove(LayerId layer, VertexId u, VertexId v) {
    remove_edges.push_back({layer, u, v});
    return *this;
  }
  UpdateBatch& AddVertices(int32_t count) {
    add_vertices += count;
    return *this;
  }
  UpdateBatch& RemoveVertex(VertexId v) {
    remove_vertices.push_back(v);
    return *this;
  }

  bool empty() const {
    return add_vertices == 0 && remove_vertices.empty() &&
           insert_edges.empty() && remove_edges.empty();
  }
};

/// Per-batch report returned by `GraphStore::ApplyUpdate`.
struct UpdateOutcome {
  /// Epoch published by this batch (unchanged for an empty no-op batch).
  uint64_t epoch = 0;
  int64_t edges_inserted = 0;
  int64_t edges_removed = 0;
  int32_t vertices_added = 0;
  int32_t vertices_removed = 0;
  /// Tracked-core maintenance effort: (vertex, layer) core exits/entries
  /// across all tracked degrees, and how each (tracked d, changed layer)
  /// pair was served — incrementally or by a full-recompute fallback past
  /// the damage threshold.
  int64_t core_exits = 0;
  int64_t core_entries = 0;
  int64_t incremental_layer_updates = 0;
  int64_t full_layer_recomputes = 0;
  double seconds = 0.0;
};

/// Cumulative `GraphStore` counters (`GraphStore::stats`).
struct StoreStats {
  int64_t batches_applied = 0;
  int64_t batches_rejected = 0;
  int64_t edges_inserted = 0;
  int64_t edges_removed = 0;
  int64_t vertices_added = 0;
  int64_t vertices_removed = 0;
  int64_t core_exits = 0;
  int64_t core_entries = 0;
  int64_t incremental_layer_updates = 0;
  int64_t full_layer_recomputes = 0;
};

}  // namespace mlcore

#endif  // MLCORE_STORE_UPDATE_H_
