#include "format/generator.h"

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "format/mlg.h"
#include "graph/multilayer_graph.h"
#include "util/timing.h"

namespace mlcore::format {

namespace {

/// splitmix64 — decorrelates the per-layer seeds derived from one user
/// seed, so `seed` and `seed + 1` do not share layer streams.
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) drawn directly from the engine's 64-bit
/// output. std::uniform_real_distribution is implementation-defined; this
/// keeps "same seed → byte-identical file" true across standard libraries.
double NextReal(std::mt19937_64& engine) {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// One R-MAT edge draw: descend `bits` quadrant levels, reject self-loops
/// and out-of-range endpoints (vertex counts need not be powers of two).
/// Returns false when the bounded redraw budget is exhausted — only
/// plausible for degenerate configs (e.g. num_vertices == 1).
bool DrawRmatEdge(std::mt19937_64& engine, int32_t n, int bits, double a,
                  double ab, double abc,
                  std::pair<VertexId, VertexId>* edge) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    int64_t u = 0;
    int64_t v = 0;
    for (int level = 0; level < bits; ++level) {
      const double r = NextReal(engine);
      u <<= 1;
      v <<= 1;
      if (r >= ab) {
        if (r < abc) {
          u |= 1;  // quadrant c: lower-left
        } else {
          u |= 1;  // quadrant d: lower-right
          v |= 1;
        }
      } else if (r >= a) {
        v |= 1;  // quadrant b: upper-right
      }
    }
    if (u >= n || v >= n || u == v) continue;
    if (u > v) std::swap(u, v);
    *edge = {static_cast<VertexId>(u), static_cast<VertexId>(v)};
    return true;
  }
  return false;
}

}  // namespace

Status GenerateMlg(const MlgGenConfig& config, const std::string& path,
                   MlgGenStats* stats) {
  if (config.num_vertices < 2 || config.num_layers < 1 ||
      config.edges_per_layer < 0) {
    return Status::InvalidArgument(
        "generator needs num_vertices >= 2, num_layers >= 1, "
        "edges_per_layer >= 0");
  }
  const double abc_sum = config.rmat_a + config.rmat_b + config.rmat_c;
  if (config.rmat_a <= 0 || config.rmat_b <= 0 || config.rmat_c <= 0 ||
      abc_sum >= 1.0) {
    return Status::InvalidArgument(
        "R-MAT probabilities must be positive with a + b + c < 1");
  }
  if (config.layer_overlap < 0.0 || config.layer_overlap > 1.0) {
    return Status::InvalidArgument("layer_overlap must be in [0, 1]");
  }

  WallTimer timer;
  const int32_t n = config.num_vertices;
  int bits = 0;
  while ((int64_t{1} << bits) < n) ++bits;
  const double a = config.rmat_a;
  const double ab = a + config.rmat_b;
  const double abc = ab + config.rmat_c;
  const auto shared_draws = static_cast<int64_t>(
      config.layer_overlap * static_cast<double>(config.edges_per_layer));

  MlgWriter writer;
  Status status = writer.Open(path, n, config.num_layers);
  if (!status.ok()) return status;

  int64_t edges_written = 0;
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::vector<std::pair<VertexId, VertexId>> directed;
  std::vector<int64_t> offsets;
  std::vector<VertexId> neighbors;
  for (int32_t layer = 0; layer < config.num_layers; ++layer) {
    edges.clear();
    edges.reserve(static_cast<size_t>(config.edges_per_layer));
    // The shared stream restarts identically for every layer, so its
    // draws land on all layers (the cross-layer overlap); the remainder
    // comes from a per-layer stream.
    std::mt19937_64 shared(MixSeed(config.seed, 0));
    std::mt19937_64 own(MixSeed(config.seed, 1 + static_cast<uint64_t>(layer)));
    std::pair<VertexId, VertexId> edge;
    for (int64_t i = 0; i < config.edges_per_layer; ++i) {
      std::mt19937_64& engine = i < shared_draws ? shared : own;
      if (DrawRmatEdge(engine, n, bits, a, ab, abc, &edge)) {
        edges.push_back(edge);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    edges_written += static_cast<int64_t>(edges.size());

    // Canonical pairs → CSR: expand to directed records, sort by (src,
    // dst) — neighbour lists come out sorted — then count-and-slice.
    directed.clear();
    directed.reserve(edges.size() * 2);
    for (const auto& [u, v] : edges) {
      directed.emplace_back(u, v);
      directed.emplace_back(v, u);
    }
    std::sort(directed.begin(), directed.end());
    offsets.assign(static_cast<size_t>(n) + 1, 0);
    for (const auto& [u, v] : directed) {
      ++offsets[static_cast<size_t>(u) + 1];
    }
    for (int32_t v = 0; v < n; ++v) {
      offsets[static_cast<size_t>(v) + 1] += offsets[static_cast<size_t>(v)];
    }
    neighbors.resize(directed.size());
    for (size_t i = 0; i < directed.size(); ++i) {
      neighbors[i] = directed[i].second;
    }
    status = writer.AppendLayer(offsets, neighbors);
    if (!status.ok()) return status;
  }
  status = writer.Finish();
  if (!status.ok()) return status;

  if (stats != nullptr) {
    stats->edges_written = edges_written;
    stats->gen_ms = timer.Millis();
  }
  return Status::Ok();
}

}  // namespace mlcore::format
