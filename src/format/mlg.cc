#include "format/mlg.h"

#include <bit>
#include <cstddef>
#include <cstring>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "util/mmap_file.h"

namespace mlcore::format {

// The on-disk encoding is little-endian by definition; the zero-copy read
// path reinterprets mapped bytes in place, so a big-endian host would need
// a byte-swapping (copying) loader that nobody has asked for yet.
static_assert(std::endian::native == std::endian::little,
              "MLG1 zero-copy load requires a little-endian host");

namespace {

/// Fixed 64-byte header. `checksum` covers bytes [0, offsetof(checksum))
/// of the final header plus the entire section table, so a truncated
/// write, a mangled table, or header field tampering all fail validation.
struct MlgHeader {
  uint8_t magic[8];
  uint32_t version;
  uint32_t flags;          // reserved, must be 0
  int64_t num_vertices;
  int64_t num_layers;
  int64_t section_count;   // always 2 * num_layers
  uint64_t table_offset;   // byte offset of the section table; 64-aligned
  uint64_t checksum;
  uint64_t reserved;       // must be 0
};
static_assert(sizeof(MlgHeader) == 64, "MLG1 header is 64 bytes");
constexpr size_t kChecksummedHeaderBytes = offsetof(MlgHeader, checksum);

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument(path + ": " + what);
}

}  // namespace

uint64_t MlgChecksum(const void* data, size_t bytes) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t hash = kFnvOffset;
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, 8);
    hash = (hash ^ word) * kFnvPrime;
  }
  if (i < bytes) {
    uint64_t word = 0;
    std::memcpy(&word, p + i, bytes - i);
    hash = (hash ^ word) * kFnvPrime;
  }
  return hash;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

MlgWriter::~MlgWriter() { Close(); }

void MlgWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status MlgWriter::WriteBytes(const void* data, size_t bytes) {
  if (bytes > 0 && std::fwrite(data, 1, bytes, file_) != bytes) {
    return Status::InvalidArgument("write failure on " + path_);
  }
  pos_ += bytes;
  return Status::Ok();
}

Status MlgWriter::PadToAlignment() {
  static constexpr char kZeros[kMlgSectionAlignment] = {};
  const uint64_t misaligned = pos_ % kMlgSectionAlignment;
  if (misaligned == 0) return Status::Ok();
  return WriteBytes(kZeros, kMlgSectionAlignment - misaligned);
}

Status MlgWriter::Open(const std::string& path, int64_t num_vertices,
                       int64_t num_layers) {
  if (file_ != nullptr) {
    return Status::InvalidArgument("MlgWriter already open on " + path_);
  }
  if (num_vertices < 0 || num_vertices > INT32_MAX) {
    return Status::InvalidArgument("MLG1 vertex count out of range");
  }
  if (num_layers < 1 || num_layers > INT32_MAX) {
    return Status::InvalidArgument("MLG1 layer count out of range");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  path_ = path;
  num_vertices_ = num_vertices;
  num_layers_ = num_layers;
  pos_ = 0;
  layers_written_ = 0;
  finished_ = false;
  sections_.clear();
  io_buffer_.resize(1 << 20);
  std::setvbuf(file_, io_buffer_.data(), _IOFBF, io_buffer_.size());

  // Placeholder header: all-zero checksum/table offset. A load of an
  // unfinished file fails the checksum check, so partial writes are never
  // mistaken for valid containers.
  MlgHeader header{};
  std::memcpy(header.magic, kMlgMagic, sizeof(kMlgMagic));
  header.version = kMlgVersion;
  header.num_vertices = num_vertices_;
  header.num_layers = num_layers_;
  header.section_count = 2 * num_layers_;
  return WriteBytes(&header, sizeof(header));
}

Status MlgWriter::AppendLayer(std::span<const int64_t> offsets,
                              std::span<const VertexId> neighbors) {
  if (file_ == nullptr || finished_) {
    return Status::InvalidArgument("MlgWriter is not open");
  }
  if (layers_written_ >= num_layers_) {
    return Status::InvalidArgument(path_ + ": more layers than declared");
  }
  if (offsets.size() != static_cast<size_t>(num_vertices_) + 1 ||
      offsets.front() != 0 ||
      offsets.back() != static_cast<int64_t>(neighbors.size())) {
    return Status::InvalidArgument(path_ + ": layer " +
                                   std::to_string(layers_written_) +
                                   " CSR arrays are inconsistent");
  }

  Status status = PadToAlignment();
  if (!status.ok()) return status;
  MlgSection offsets_section{
      static_cast<uint32_t>(MlgSectionKind::kOffsets), layers_written_, pos_,
      offsets.size_bytes(), MlgChecksum(offsets.data(), offsets.size_bytes())};
  status = WriteBytes(offsets.data(), offsets.size_bytes());
  if (!status.ok()) return status;
  sections_.push_back(offsets_section);

  status = PadToAlignment();
  if (!status.ok()) return status;
  MlgSection neighbors_section{
      static_cast<uint32_t>(MlgSectionKind::kNeighbors), layers_written_,
      pos_, neighbors.size_bytes(),
      MlgChecksum(neighbors.data(), neighbors.size_bytes())};
  status = WriteBytes(neighbors.data(), neighbors.size_bytes());
  if (!status.ok()) return status;
  sections_.push_back(neighbors_section);

  ++layers_written_;
  return Status::Ok();
}

Status MlgWriter::Finish() {
  if (file_ == nullptr || finished_) {
    return Status::InvalidArgument("MlgWriter is not open");
  }
  if (layers_written_ != num_layers_) {
    return Status::InvalidArgument(
        path_ + ": " + std::to_string(layers_written_) + " of " +
        std::to_string(num_layers_) + " layers written");
  }
  Status status = PadToAlignment();
  if (!status.ok()) return status;
  const uint64_t table_offset = pos_;
  status = WriteBytes(sections_.data(), sections_.size() * sizeof(MlgSection));
  if (!status.ok()) return status;

  MlgHeader header{};
  std::memcpy(header.magic, kMlgMagic, sizeof(kMlgMagic));
  header.version = kMlgVersion;
  header.num_vertices = num_vertices_;
  header.num_layers = num_layers_;
  header.section_count = 2 * num_layers_;
  header.table_offset = table_offset;
  // The file checksum combines the header prefix and the section table:
  // corrupting either (or truncating before the table) fails validation.
  header.checksum =
      MlgChecksum(&header, kChecksummedHeaderBytes) ^
      MlgChecksum(sections_.data(), sections_.size() * sizeof(MlgSection));

  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(&header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fflush(file_) != 0) {
    return Status::InvalidArgument("write failure on " + path_);
  }
  finished_ = true;
  Close();
  return Status::Ok();
}

Status WriteMlgGraph(const MultiLayerGraph& graph, const std::string& path) {
  MlgWriter writer;
  Status status = writer.Open(path, graph.NumVertices(), graph.NumLayers());
  if (!status.ok()) return status;
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    const MultiLayerGraph::MappedLayer csr = graph.LayerCsr(layer);
    status = writer.AppendLayer(csr.offsets, csr.neighbors);
    if (!status.ok()) return status;
  }
  return writer.Finish();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

const char* SectionKindName(uint32_t kind) {
  switch (static_cast<MlgSectionKind>(kind)) {
    case MlgSectionKind::kOffsets:
      return "offsets";
    case MlgSectionKind::kNeighbors:
      return "neighbors";
  }
  return "unknown";
}

/// Validates one layer's CSR views: monotone offsets starting at 0 and
/// ending at the neighbour count, neighbour ids in [0, n), each list
/// strictly ascending (sorted, duplicate-free) and self-loop-free.
bool ValidLayerCsr(std::span<const int64_t> offsets,
                   std::span<const VertexId> neighbors, int64_t n) {
  if (offsets.front() != 0 ||
      offsets.back() != static_cast<int64_t>(neighbors.size())) {
    return false;
  }
  for (int64_t v = 0; v < n; ++v) {
    const int64_t begin = offsets[static_cast<size_t>(v)];
    const int64_t end = offsets[static_cast<size_t>(v) + 1];
    if (begin > end) return false;
    VertexId prev = -1;
    for (int64_t i = begin; i < end; ++i) {
      const VertexId u = neighbors[static_cast<size_t>(i)];
      if (u <= prev || u >= n || u == v) return false;
      prev = u;
    }
  }
  return true;
}

}  // namespace

Status LoadMlgGraph(const std::string& path, MultiLayerGraph* graph,
                    MlgLoadStats* stats, obs::Trace* trace,
                    const MlgReadOptions& options) {
  obs::Span span(trace, "graph.load");

  auto file = std::make_shared<util::MmapFile>();
  Status status = util::MmapFile::Open(path, file.get());
  if (!status.ok()) return status;
  const uint8_t* base = file->data();
  const uint64_t size = file->size();

  if (size < sizeof(MlgHeader)) {
    return Corrupt(path, "truncated header (" + std::to_string(size) +
                             " bytes, need 64)");
  }
  MlgHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMlgMagic, sizeof(kMlgMagic)) != 0) {
    return Corrupt(path, "bad magic (not an MLG1 container)");
  }
  if (header.version != kMlgVersion) {
    return Corrupt(path, "unsupported MLG1 version " +
                             std::to_string(header.version));
  }
  if (header.flags != 0 || header.reserved != 0) {
    return Corrupt(path, "corrupt header (reserved bits set)");
  }
  if (header.num_vertices < 0 || header.num_vertices > INT32_MAX ||
      header.num_layers < 1 || header.num_layers > INT32_MAX) {
    return Corrupt(path, "corrupt header (counts out of range)");
  }
  const int64_t n = header.num_vertices;
  const int64_t l = header.num_layers;
  if (header.section_count != 2 * l) {
    return Corrupt(path, "corrupt header (section count mismatch)");
  }
  // Overflow-safe bounds check of the section table: both operands stay in
  // uint64 and the division form never multiplies attacker-chosen counts.
  const auto section_count = static_cast<uint64_t>(header.section_count);
  if (header.table_offset % kMlgSectionAlignment != 0 ||
      header.table_offset > size ||
      section_count > (size - header.table_offset) / sizeof(MlgSection)) {
    return Corrupt(path, "section table out of bounds");
  }
  const uint8_t* table_bytes = base + header.table_offset;
  const uint64_t table_len = section_count * sizeof(MlgSection);
  if (options.verify_checksums) {
    uint64_t checksum = MlgChecksum(&header, kChecksummedHeaderBytes);
    checksum ^= MlgChecksum(table_bytes, table_len);
    if (checksum != header.checksum) {
      return Corrupt(path, "header/section-table checksum mismatch");
    }
  }

  std::vector<MlgSection> sections(section_count);
  std::memcpy(sections.data(), table_bytes, table_len);

  std::vector<MultiLayerGraph::MappedLayer> layers(static_cast<size_t>(l));
  int64_t total_edges = 0;
  for (int64_t layer = 0; layer < l; ++layer) {
    for (int half = 0; half < 2; ++half) {
      const MlgSection& section =
          sections[static_cast<size_t>(2 * layer + half)];
      const auto expected_kind = half == 0 ? MlgSectionKind::kOffsets
                                           : MlgSectionKind::kNeighbors;
      const std::string where = "layer " + std::to_string(layer) + " " +
                                SectionKindName(section.kind) + " section";
      if (section.kind != static_cast<uint32_t>(expected_kind) ||
          section.layer != layer) {
        return Corrupt(path, "corrupt section table (layer " +
                                 std::to_string(layer) + " misordered)");
      }
      if (section.offset % kMlgSectionAlignment != 0 ||
          section.offset > size || section.length > size - section.offset) {
        return Corrupt(path, where + " out of bounds");
      }
      if (options.verify_checksums &&
          MlgChecksum(base + section.offset, section.length) !=
              section.checksum) {
        return Corrupt(path, where + " checksum mismatch");
      }
      if (half == 0) {
        if (section.length != (static_cast<uint64_t>(n) + 1) * 8) {
          return Corrupt(path, where + " has wrong length");
        }
        layers[static_cast<size_t>(layer)].offsets = {
            reinterpret_cast<const int64_t*>(base + section.offset),
            static_cast<size_t>(n) + 1};
      } else {
        if (section.length % sizeof(VertexId) != 0) {
          return Corrupt(path, where + " has wrong length");
        }
        layers[static_cast<size_t>(layer)].neighbors = {
            reinterpret_cast<const VertexId*>(base + section.offset),
            static_cast<size_t>(section.length / sizeof(VertexId))};
      }
    }
    const MultiLayerGraph::MappedLayer& views =
        layers[static_cast<size_t>(layer)];
    if (!ValidLayerCsr(views.offsets, views.neighbors, n)) {
      return Corrupt(path, "layer " + std::to_string(layer) +
                               " has corrupt CSR structure");
    }
    total_edges += static_cast<int64_t>(views.neighbors.size()) / 2;
  }

  *graph = MultiLayerGraph::FromMappedCsr(static_cast<int32_t>(n), layers,
                                          std::move(file));

  const double load_ms = span.timer().Millis();
  const int64_t mapped_bytes = graph->MappedBytes();
  obs::Registry& registry = obs::Registry::Global();
  registry
      .GetHistogram("format.load_ms", obs::Histogram::LatencyBoundsMs())
      ->Record(load_ms);
  registry.GetGauge("format.mmap_bytes")->Set(mapped_bytes);
  if (stats != nullptr) {
    stats->load_ms = load_ms;
    stats->mapped_bytes = mapped_bytes;
    stats->num_vertices = n;
    stats->num_layers = l;
    stats->total_edges = total_edges;
  }
  return Status::Ok();
}

}  // namespace mlcore::format
