#ifndef MLCORE_FORMAT_GENERATOR_H_
#define MLCORE_FORMAT_GENERATOR_H_

#include <cstdint>
#include <string>

#include "service/status.h"

namespace mlcore::format {

/// Configuration of the scalable multi-layer R-MAT generator (DESIGN.md
/// §13). Layers are recursive-matrix graphs over a shared vertex space;
/// `layer_overlap` controls how much edge mass recurs across layers —
/// the driver of non-trivial d-CC lattices (overlapping dense cores on
/// layer subsets), and the knob the Fig 26–27 scalability reruns sweep.
struct MlgGenConfig {
  int32_t num_vertices = 1 << 16;
  int32_t num_layers = 4;
  /// Edge draws per layer before deduplication; the written layer has at
  /// most this many edges (R-MAT redraws collide, duplicates are merged).
  int64_t edges_per_layer = 1 << 18;
  /// R-MAT quadrant probabilities; the fourth is 1 - a - b - c. Defaults
  /// are the Graph500 parameters (skewed, heavy-tailed degrees).
  double rmat_a = 0.57;
  double rmat_b = 0.19;
  double rmat_c = 0.19;
  /// Fraction of each layer's draws taken from a stream shared by every
  /// layer: those edges appear on all layers, giving d-CCs at s up to l.
  double layer_overlap = 0.3;
  uint64_t seed = 1;
};

struct MlgGenStats {
  int64_t edges_written = 0;  // post-dedup, summed over layers
  double gen_ms = 0;
};

/// Generates the configured graph straight into an MLG1 container at
/// `path`, streaming one layer at a time through `MlgWriter` — peak memory
/// is one layer's edge list, never the whole graph, so 10⁸-edge files are
/// generated comfortably on a laptop. Deterministic: the same config
/// (including seed) produces a byte-identical file.
Status GenerateMlg(const MlgGenConfig& config, const std::string& path,
                   MlgGenStats* stats = nullptr);

}  // namespace mlcore::format

#endif  // MLCORE_FORMAT_GENERATOR_H_
