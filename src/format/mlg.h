#ifndef MLCORE_FORMAT_MLG_H_
#define MLCORE_FORMAT_MLG_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "graph/multilayer_graph.h"
#include "obs/span.h"
#include "service/status.h"

// MLG1: the binary multi-layer graph container (DESIGN.md §13).
//
// A fixed 64-byte little-endian header, one CSR block (offsets + neighbour
// ids) per layer as 64-byte-aligned sections, and a trailing section table
// that the header points at. Every section carries a checksum; the header
// and section table are covered by a whole-file checksum. The layout is
// mmap-friendly by construction: a validating reader hands the mapped
// offset/neighbour arrays straight to `MultiLayerGraph::FromMappedCsr`
// without copying a byte of adjacency data.
//
// All validation failures surface as structured `Status` errors naming the
// file and the failing check — never aborts, never UB on truncated or
// hostile input (tests/format_test.cc drives the corruption matrix under
// ASan).

namespace mlcore::format {

/// Container magic: "MLG1" plus the PNG-style CR-LF-SUB-LF tail that turns
/// text-mode transfer mangling into an immediate bad-magic error.
inline constexpr uint8_t kMlgMagic[8] = {'M', 'L', 'G', '1',
                                         '\r', '\n', 0x1A, '\n'};
inline constexpr uint32_t kMlgVersion = 1;
inline constexpr uint64_t kMlgSectionAlignment = 64;

/// Section kinds, one (offsets, neighbors) pair per layer, in layer order.
enum class MlgSectionKind : uint32_t {
  kOffsets = 1,    // (n + 1) little-endian int64 CSR offsets
  kNeighbors = 2,  // concatenated sorted neighbour lists, int32 vertex ids
};

/// One section-table entry (32 bytes on disk, written verbatim).
struct MlgSection {
  uint32_t kind = 0;      // MlgSectionKind
  int32_t layer = -1;     // owning layer
  uint64_t offset = 0;    // from file start; multiple of 64
  uint64_t length = 0;    // bytes
  uint64_t checksum = 0;  // MlgChecksum of the section bytes
};
static_assert(sizeof(MlgSection) == 32, "MLG1 section entries are 32 bytes");

/// The MLG1 content checksum: FNV-1a folded over little-endian 64-bit
/// words (zero-padded tail). Word-at-a-time keeps verification at memory
/// bandwidth instead of byte-loop speed, so checksummed mmap loads stay an
/// order of magnitude ahead of text parsing.
uint64_t MlgChecksum(const void* data, size_t bytes);

/// Streaming MLG1 writer: Open fixes the vertex/layer counts, AppendLayer
/// is called once per layer in layer order (the generator streams layers
/// through here without ever holding the whole graph), Finish writes the
/// section table and finalises the header. Output is buffered (1 MiB);
/// every path reports failures as Status and leaves no half-valid file
/// claiming to be complete — the header's checksum is written only by a
/// successful Finish, so an interrupted write fails validation on load.
class MlgWriter {
 public:
  MlgWriter() = default;
  ~MlgWriter();

  MlgWriter(const MlgWriter&) = delete;
  MlgWriter& operator=(const MlgWriter&) = delete;

  Status Open(const std::string& path, int64_t num_vertices,
              int64_t num_layers);

  /// Writes layer `layers_written()`'s CSR block. `offsets` must have
  /// num_vertices + 1 non-decreasing entries starting at 0;
  /// `offsets.back()` must equal `neighbors.size()`.
  Status AppendLayer(std::span<const int64_t> offsets,
                     std::span<const VertexId> neighbors);

  /// Writes the section table, rewrites the header with the final
  /// checksum, flushes, and closes. Fails unless exactly num_layers
  /// layers were appended.
  Status Finish();

  int32_t layers_written() const { return layers_written_; }

 private:
  Status WriteBytes(const void* data, size_t bytes);
  Status PadToAlignment();
  void Close();

  std::FILE* file_ = nullptr;
  std::string path_;
  int64_t num_vertices_ = 0;
  int64_t num_layers_ = 0;
  uint64_t pos_ = 0;
  int32_t layers_written_ = 0;
  bool finished_ = false;
  std::vector<MlgSection> sections_;
  std::vector<char> io_buffer_;
};

/// Serialises `graph` as an MLG1 container (convenience over MlgWriter).
Status WriteMlgGraph(const MultiLayerGraph& graph, const std::string& path);

struct MlgLoadStats {
  double load_ms = 0;        // validate + materialise time
  int64_t mapped_bytes = 0;  // adjacency bytes aliasing the mapping
  int64_t num_vertices = 0;
  int64_t num_layers = 0;
  int64_t total_edges = 0;
};

struct MlgReadOptions {
  /// Verify the per-section and whole-file checksums. Costs one sequential
  /// sweep of the mapping; disable only for trusted files where first-load
  /// latency matters more than corruption detection.
  bool verify_checksums = true;
};

/// Memory-maps an MLG1 container and materialises a `MultiLayerGraph`
/// whose adjacency views point into the mapping (zero-copy; the mapping
/// is owned by the graph and lives as long as any copy sharing it).
///
/// Validates the header, section table, checksums (per options) and the
/// CSR structural invariants (monotone offsets, in-range sorted neighbour
/// lists, no self-loops) before any view escapes; corrupt input yields a
/// structured Status, never a crash. Records `format.load_ms` /
/// `format.mmap_bytes` into obs::Registry::Global() and, when `trace` is
/// non-null, a "graph.load" span (DESIGN.md §12).
Status LoadMlgGraph(const std::string& path, MultiLayerGraph* graph,
                    MlgLoadStats* stats = nullptr,
                    obs::Trace* trace = nullptr,
                    const MlgReadOptions& options = {});

}  // namespace mlcore::format

#endif  // MLCORE_FORMAT_MLG_H_
