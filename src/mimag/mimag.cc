#include "mimag/mimag.h"

#include <algorithm>

#include "mimag/quasi_clique.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/timing.h"

namespace mlcore {

namespace {

class Miner {
 public:
  Miner(const MultiLayerGraph& graph, const MimagParams& params,
        MimagResult& result)
      : graph_(graph), params_(params), result_(result) {}

  void Run() {
    const int32_t n = graph_.NumVertices();
    // Visit seeds in descending total-degree order: dense regions carry the
    // quasi-cliques, so they should consume the node budget first. The
    // subsets enumerated under a seed are fixed by vertex id, so the seed
    // visiting order does not affect which subsets exist — only which are
    // reached before the budget runs out.
    std::vector<VertexId> seeds(static_cast<size_t>(n));
    for (VertexId v = 0; v < n; ++v) seeds[static_cast<size_t>(v)] = v;
    std::stable_sort(seeds.begin(), seeds.end(), [&](VertexId a, VertexId b) {
      int64_t da = 0, db = 0;
      for (LayerId layer = 0; layer < graph_.NumLayers(); ++layer) {
        da += graph_.Degree(layer, a);
        db += graph_.Degree(layer, b);
      }
      return da > db;
    });
    for (VertexId seed : seeds) {
      if (result_.budget_exhausted) break;
      VertexSet candidates = SeedCandidates(seed);
      if (static_cast<int>(candidates.size()) + 1 < params_.min_size) {
        continue;
      }
      seed_nodes_ = 0;
      seed_budget_hit_ = false;
      VertexSet q = {seed};
      Dfs(q, candidates);
    }
  }

 private:
  // Candidates for subsets seeded at `seed`: vertices with larger id lying
  // within distance 2 of the seed on at least `min_support` layers — the
  // diameter bound of ref [11] for γ ≥ 0.5.
  VertexSet SeedCandidates(VertexId seed) {
    const auto n = static_cast<size_t>(graph_.NumVertices());
    std::vector<int> hop_support(n, 0);
    Bitset two_hop(n);
    for (LayerId layer = 0; layer < graph_.NumLayers(); ++layer) {
      two_hop.Reset();
      for (VertexId u : graph_.Neighbors(layer, seed)) {
        two_hop.Set(static_cast<size_t>(u));
        for (VertexId w : graph_.Neighbors(layer, u)) {
          two_hop.Set(static_cast<size_t>(w));
        }
      }
      for (size_t v = 0; v < n; ++v) {
        if (two_hop.Test(v)) ++hop_support[v];
      }
    }
    VertexSet candidates;
    for (VertexId v = seed + 1; v < graph_.NumVertices(); ++v) {
      if (hop_support[static_cast<size_t>(v)] >= params_.min_support) {
        candidates.push_back(v);
      }
    }
    return candidates;
  }

  void Dfs(VertexSet& q, const VertexSet& candidates) {
    if (++result_.nodes_explored > params_.max_nodes) {
      result_.budget_exhausted = true;
      return;
    }
    if (++seed_nodes_ > params_.max_nodes_per_seed) {
      seed_budget_hit_ = true;
      return;
    }

    const auto size = static_cast<int>(q.size());
    if (size >= params_.min_size) {
      LayerSet support = SupportingLayers(graph_, q, params_.gamma);
      if (static_cast<int>(support.size()) >= params_.min_support &&
          IsLocallyMaximal(q, candidates)) {
        raw_.push_back(MimagCluster{q, std::move(support)});
        ++result_.raw_clusters;
      }
    }
    if (candidates.empty()) return;
    if (size + static_cast<int>(candidates.size()) < params_.min_size) {
      return;
    }

    // Layer liveness + candidate filtering, iterated to a fixpoint: on a
    // live layer every current member can still reach the degree demanded
    // by any strict superset (threshold ⌈γ|Q|⌉, since |Q'| ≥ |Q| + 1), and
    // every surviving candidate must itself meet that threshold on at
    // least min_support live layers. Dropping candidates shrinks Q ∪ C,
    // which can kill more layers, hence the loop.
    const int extension_threshold =
        QuasiCliqueDegreeThreshold(params_.gamma, size + 1);
    VertexSet filtered = candidates;
    LayerSet alive;
    while (true) {
      VertexSet q_and_c = UnionSorted(q, filtered);
      alive.clear();
      for (LayerId layer = 0; layer < graph_.NumLayers(); ++layer) {
        bool ok = true;
        for (VertexId v : q) {
          if (InternalDegree(graph_, layer, v, q_and_c) <
              extension_threshold) {
            ok = false;
            break;
          }
        }
        if (ok) alive.push_back(layer);
      }
      if (static_cast<int>(alive.size()) < params_.min_support) return;

      VertexSet next;
      next.reserve(filtered.size());
      for (VertexId u : filtered) {
        int viable_layers = 0;
        for (LayerId layer : alive) {
          if (InternalDegree(graph_, layer, u, q_and_c) >=
              extension_threshold) {
            ++viable_layers;
          }
        }
        if (viable_layers >= params_.min_support) next.push_back(u);
      }
      if (next.size() == filtered.size()) break;
      filtered = std::move(next);
      if (size + static_cast<int>(filtered.size()) < params_.min_size) {
        return;
      }
    }

    for (size_t i = 0; i < filtered.size(); ++i) {
      if (result_.budget_exhausted || seed_budget_hit_) return;
      VertexSet rest(filtered.begin() + static_cast<long>(i) + 1,
                     filtered.end());
      // Keep q sorted across the recursion (vertices are added in
      // increasing id order by construction).
      q.push_back(filtered[i]);
      Dfs(q, rest);
      q.pop_back();
    }
  }

  bool IsLocallyMaximal(const VertexSet& q, const VertexSet& candidates) {
    // Cap the lookahead; over-recording is cleaned by the redundancy
    // filter, while an unbounded scan dominates node cost on hub vertices.
    constexpr size_t kMaxLookahead = 128;
    if (candidates.size() > kMaxLookahead) return true;
    for (VertexId u : candidates) {
      VertexSet extended = q;
      extended.insert(
          std::upper_bound(extended.begin(), extended.end(), u), u);
      if (static_cast<int>(
              SupportingLayers(graph_, extended, params_.gamma).size()) >=
          params_.min_support) {
        return false;
      }
    }
    return true;
  }

 public:
  std::vector<MimagCluster> raw_;

 private:
  const MultiLayerGraph& graph_;
  const MimagParams& params_;
  MimagResult& result_;
  int64_t seed_nodes_ = 0;
  bool seed_budget_hit_ = false;
};

}  // namespace

VertexSet MimagResult::Cover() const {
  VertexSet cover;
  for (const auto& cluster : clusters) {
    cover = UnionSorted(cover, cluster.vertices);
  }
  return cover;
}

namespace {

// Greedily extends a quasi-clique to maximality: repeatedly add the vertex
// that keeps Q a γ-quasi-clique on the most layers, as long as the support
// stays ≥ min_support. Real MiMAG reports maximal clusters; the budgeted
// set-enumeration finds (possibly non-maximal) witnesses deep in dense
// regions, and this pass grows them to the maximal clusters it would have
// reported.
void MaximalizeCluster(const MultiLayerGraph& graph,
                       const MimagParams& params, MimagCluster* cluster) {
  while (true) {
    VertexId best_vertex = -1;
    // Accept any extension that stays above the support threshold,
    // preferring the one preserving the most layers.
    auto best_support = static_cast<size_t>(params.min_support - 1);
    // Candidates: neighbours of the cluster on any supporting layer.
    VertexSet candidates;
    for (LayerId layer : cluster->layers) {
      for (VertexId v : cluster->vertices) {
        for (VertexId u : graph.Neighbors(layer, v)) {
          candidates.push_back(u);
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (VertexId u : candidates) {
      if (std::binary_search(cluster->vertices.begin(),
                             cluster->vertices.end(), u)) {
        continue;
      }
      VertexSet extended = cluster->vertices;
      extended.insert(
          std::upper_bound(extended.begin(), extended.end(), u), u);
      LayerSet support = SupportingLayers(graph, extended, params.gamma);
      if (support.size() > best_support) {
        best_support = support.size();
        best_vertex = u;
      }
    }
    if (best_vertex < 0) return;
    cluster->vertices.insert(
        std::upper_bound(cluster->vertices.begin(), cluster->vertices.end(),
                         best_vertex),
        best_vertex);
    cluster->layers =
        SupportingLayers(graph, cluster->vertices, params.gamma);
  }
}

}  // namespace

MimagResult MineMimag(const MultiLayerGraph& graph,
                      const MimagParams& params) {
  MLCORE_CHECK(params.gamma >= 0.0 && params.gamma <= 1.0);
  MLCORE_CHECK(params.min_size >= 2);
  WallTimer timer;
  MimagResult result;
  Miner miner(graph, params, result);
  miner.Run();

  // Diversified output: rank witnesses by quality (size, then support),
  // drop those mostly covered by better ones (MiMAG's redundancy filter),
  // then grow each survivor to a maximal cluster. Maximalising only the
  // diversified survivors keeps the post-processing linear in the output
  // size rather than in the (much larger) witness count.
  std::stable_sort(miner.raw_.begin(), miner.raw_.end(),
                   [](const MimagCluster& a, const MimagCluster& b) {
                     if (a.vertices.size() != b.vertices.size()) {
                       return a.vertices.size() > b.vertices.size();
                     }
                     return a.layers.size() > b.layers.size();
                   });
  Bitset covered(static_cast<size_t>(graph.NumVertices()));
  for (auto& cluster : miner.raw_) {
    int64_t overlap = 0;
    for (VertexId v : cluster.vertices) {
      if (covered.Test(static_cast<size_t>(v))) ++overlap;
    }
    if (static_cast<double>(overlap) >
        params.redundancy_threshold *
            static_cast<double>(cluster.vertices.size())) {
      continue;
    }
    MaximalizeCluster(graph, params, &cluster);
    for (VertexId v : cluster.vertices) covered.Set(static_cast<size_t>(v));
    result.clusters.push_back(std::move(cluster));
  }
  // Maximalisation can merge survivors into identical clusters; dedupe.
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const MimagCluster& a, const MimagCluster& b) {
              return a.vertices < b.vertices;
            });
  result.clusters.erase(
      std::unique(result.clusters.begin(), result.clusters.end(),
                  [](const MimagCluster& a, const MimagCluster& b) {
                    return a.vertices == b.vertices;
                  }),
      result.clusters.end());
  std::stable_sort(result.clusters.begin(), result.clusters.end(),
                   [](const MimagCluster& a, const MimagCluster& b) {
                     return a.vertices.size() > b.vertices.size();
                   });
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace mlcore
