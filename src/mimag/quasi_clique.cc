#include "mimag/quasi_clique.h"

#include <algorithm>
#include <cmath>

namespace mlcore {

int QuasiCliqueDegreeThreshold(double gamma, int size) {
  // ⌈γ(size−1)⌉ with a tolerance so that e.g. γ=0.8, size=6 → 4 exactly.
  return static_cast<int>(std::ceil(gamma * (size - 1) - 1e-9));
}

int InternalDegree(const MultiLayerGraph& graph, LayerId layer, VertexId v,
                   const VertexSet& q) {
  int degree = 0;
  auto nbrs = graph.Neighbors(layer, v);
  // Merge-count the two sorted sequences.
  auto it = q.begin();
  for (VertexId u : nbrs) {
    while (it != q.end() && *it < u) ++it;
    if (it == q.end()) break;
    if (*it == u) ++degree;
  }
  return degree;
}

bool IsQuasiClique(const MultiLayerGraph& graph, LayerId layer,
                   const VertexSet& q, double gamma) {
  if (q.size() <= 1) return true;
  const int threshold =
      QuasiCliqueDegreeThreshold(gamma, static_cast<int>(q.size()));
  for (VertexId v : q) {
    if (InternalDegree(graph, layer, v, q) < threshold) return false;
  }
  return true;
}

LayerSet SupportingLayers(const MultiLayerGraph& graph, const VertexSet& q,
                          double gamma) {
  LayerSet layers;
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    if (IsQuasiClique(graph, layer, q, gamma)) layers.push_back(layer);
  }
  return layers;
}

}  // namespace mlcore
