#ifndef MLCORE_MIMAG_MIMAG_H_
#define MLCORE_MIMAG_MIMAG_H_

#include <cstdint>
#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Parameters of the cross-graph quasi-clique miner (the paper's MiMAG
/// comparator, ref [4]; see DESIGN.md §5 for the substitution rationale).
struct MimagParams {
  /// Quasi-clique density γ ∈ [0, 1]. The paper's comparison uses 0.8.
  double gamma = 0.8;
  /// Minimum cluster size (the paper's d′; set to d + 1 in Fig 29).
  int min_size = 5;
  /// Minimum number of supporting layers (same s as DCCS).
  int min_support = 4;
  /// Diversified-output redundancy threshold: a cluster is kept only if at
  /// most this fraction of its vertices is already covered by previously
  /// kept (higher-quality) clusters.
  double redundancy_threshold = 0.5;
  /// Global branch-and-bound node budget; exploration stops (and reports
  /// `budget_exhausted`) past it. MiMAG's set-enumeration tree has 2^|V|
  /// nodes (paper §VI), so a safety valve is mandatory on larger inputs.
  int64_t max_nodes = 2'000'000;
  /// Per-seed budget: caps the subtree explored from any single seed vertex
  /// so one dense region cannot starve the rest of the graph.
  int64_t max_nodes_per_seed = 4'000;
};

/// A mined cross-graph quasi-clique: the vertex set and its supporting
/// layers.
struct MimagCluster {
  VertexSet vertices;
  LayerSet layers;
};

struct MimagResult {
  /// Diversified (redundancy-filtered) clusters, best quality first.
  std::vector<MimagCluster> clusters;
  /// Locally-maximal qualifying quasi-cliques found before diversification.
  int64_t raw_clusters = 0;
  int64_t nodes_explored = 0;
  bool budget_exhausted = false;
  double seconds = 0.0;

  /// Union of all cluster vertex sets (Cov(R_Q) in the paper's metrics).
  VertexSet Cover() const;
};

/// Mines diversified cross-graph γ-quasi-cliques recurring on at least
/// `min_support` layers, via set-enumeration branch-and-bound with
/// per-layer degree-bound pruning and a diameter-2 candidate restriction
/// (valid for γ ≥ 0.5, ref [11]).
MimagResult MineMimag(const MultiLayerGraph& graph, const MimagParams& params);

}  // namespace mlcore

#endif  // MLCORE_MIMAG_MIMAG_H_
