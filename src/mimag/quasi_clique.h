#ifndef MLCORE_MIMAG_QUASI_CLIQUE_H_
#define MLCORE_MIMAG_QUASI_CLIQUE_H_

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Smallest integer degree satisfying the γ-quasi-clique constraint for a
/// vertex set of size `size`: ⌈γ·(size − 1)⌉ (paper §I: each vertex adjacent
/// to at least γ(|Q|−1) vertices of Q).
int QuasiCliqueDegreeThreshold(double gamma, int size);

/// Number of neighbours of `v` inside sorted set `q` on `layer`.
int InternalDegree(const MultiLayerGraph& graph, LayerId layer, VertexId v,
                   const VertexSet& q);

/// True iff sorted set `q` is a γ-quasi-clique on `layer`.
bool IsQuasiClique(const MultiLayerGraph& graph, LayerId layer,
                   const VertexSet& q, double gamma);

/// Layers of `graph` on which `q` is a γ-quasi-clique, sorted.
LayerSet SupportingLayers(const MultiLayerGraph& graph, const VertexSet& q,
                          double gamma);

}  // namespace mlcore

#endif  // MLCORE_MIMAG_QUASI_CLIQUE_H_
