#ifndef MLCORE_EVAL_METRICS_H_
#define MLCORE_EVAL_METRICS_H_

#include <map>
#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// The similarity metrics of paper §VI (Fig 29) between two result covers:
///   precision = |reference ∩ candidate| / |candidate|
///   recall    = |reference ∩ candidate| / |reference|
///   f1        = harmonic mean of the two.
/// `reference` plays the role of Cov(R_Q) (quasi-clique cover) and
/// `candidate` of Cov(R_C) (d-CC cover).
struct OverlapMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

OverlapMetrics CoverOverlap(const VertexSet& reference,
                            const VertexSet& candidate);

/// Fig 30: for each group of equally-sized quasi-cliques Q, the empirical
/// distribution of |Q ∩ cover| over j = 0 … |Q|. Returned as
/// size → vector of fractions indexed by j (rows sum to 1 when the group is
/// non-empty).
std::map<int, std::vector<double>> ContainmentDistribution(
    const std::vector<VertexSet>& quasi_cliques, const VertexSet& cover);

/// Set-level F1 between a single ground-truth community and a single
/// found community (harmonic mean of |∩|/|found| and |∩|/|truth|).
double SetF1(const VertexSet& truth, const VertexSet& found);

/// Recovery score of a result against planted ground truth: the average,
/// over ground-truth communities, of the best SetF1 against any found
/// community. 1.0 = every planted community recovered exactly. The
/// standard best-match evaluation for planted-partition experiments.
double CommunityRecoveryScore(const std::vector<VertexSet>& truth,
                              const std::vector<VertexSet>& found);

}  // namespace mlcore

#endif  // MLCORE_EVAL_METRICS_H_
