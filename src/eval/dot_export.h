#ifndef MLCORE_EVAL_DOT_EXPORT_H_
#define MLCORE_EVAL_DOT_EXPORT_H_

#include <map>
#include <string>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Graphviz DOT export of the subgraph induced by the keys of `colors` on
/// one layer; every vertex is filled with its mapped colour. Used by the
/// Fig 31 qualitative comparison (red = in both covers, green = d-CC only,
/// blue = quasi-clique only).
std::string ExportDot(const MultiLayerGraph& graph, LayerId layer,
                      const std::map<VertexId, std::string>& colors,
                      const std::string& graph_name);

}  // namespace mlcore

#endif  // MLCORE_EVAL_DOT_EXPORT_H_
