#include "eval/metrics.h"

#include <algorithm>

namespace mlcore {

OverlapMetrics CoverOverlap(const VertexSet& reference,
                            const VertexSet& candidate) {
  OverlapMetrics metrics;
  if (reference.empty() || candidate.empty()) return metrics;
  const auto common =
      static_cast<double>(IntersectSorted(reference, candidate).size());
  metrics.precision = common / static_cast<double>(candidate.size());
  metrics.recall = common / static_cast<double>(reference.size());
  if (metrics.precision + metrics.recall > 0) {
    metrics.f1 = 2 * metrics.precision * metrics.recall /
                 (metrics.precision + metrics.recall);
  }
  return metrics;
}

double SetF1(const VertexSet& truth, const VertexSet& found) {
  if (truth.empty() || found.empty()) return 0.0;
  const auto common =
      static_cast<double>(IntersectSorted(truth, found).size());
  if (common == 0.0) return 0.0;
  const double precision = common / static_cast<double>(found.size());
  const double recall = common / static_cast<double>(truth.size());
  return 2 * precision * recall / (precision + recall);
}

double CommunityRecoveryScore(const std::vector<VertexSet>& truth,
                              const std::vector<VertexSet>& found) {
  if (truth.empty()) return 0.0;
  double total = 0.0;
  for (const VertexSet& community : truth) {
    double best = 0.0;
    for (const VertexSet& candidate : found) {
      best = std::max(best, SetF1(community, candidate));
    }
    total += best;
  }
  return total / static_cast<double>(truth.size());
}

std::map<int, std::vector<double>> ContainmentDistribution(
    const std::vector<VertexSet>& quasi_cliques, const VertexSet& cover) {
  std::map<int, std::vector<int64_t>> counts;
  std::map<int, int64_t> totals;
  for (const VertexSet& q : quasi_cliques) {
    const auto size = static_cast<int>(q.size());
    const auto overlap =
        static_cast<size_t>(IntersectSorted(q, cover).size());
    auto& row = counts[size];
    if (row.size() < static_cast<size_t>(size) + 1) {
      row.resize(static_cast<size_t>(size) + 1, 0);
    }
    ++row[overlap];
    ++totals[size];
  }
  std::map<int, std::vector<double>> distribution;
  for (const auto& [size, row] : counts) {
    std::vector<double> fractions(row.size(), 0.0);
    for (size_t j = 0; j < row.size(); ++j) {
      fractions[j] =
          static_cast<double>(row[j]) / static_cast<double>(totals[size]);
    }
    distribution[size] = std::move(fractions);
  }
  return distribution;
}

}  // namespace mlcore
