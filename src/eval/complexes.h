#ifndef MLCORE_EVAL_COMPLEXES_H_
#define MLCORE_EVAL_COMPLEXES_H_

#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Fig 32 metric: the fraction of ground-truth complexes entirely contained
/// in at least one of the returned dense subgraphs ("for each protein
/// complex, if it is entirely contained in a dense subgraph, we say this
/// protein complex is found").
double ComplexRecall(const std::vector<VertexSet>& complexes,
                     const std::vector<VertexSet>& dense_subgraphs);

}  // namespace mlcore

#endif  // MLCORE_EVAL_COMPLEXES_H_
