#include "eval/dot_export.h"

#include <sstream>

namespace mlcore {

std::string ExportDot(const MultiLayerGraph& graph, LayerId layer,
                      const std::map<VertexId, std::string>& colors,
                      const std::string& graph_name) {
  std::ostringstream out;
  out << "graph " << graph_name << " {\n";
  out << "  node [style=filled, shape=circle, label=\"\"];\n";
  for (const auto& [v, color] : colors) {
    out << "  v" << v << " [fillcolor=" << color << "];\n";
  }
  for (const auto& [v, color] : colors) {
    for (VertexId u : graph.Neighbors(layer, v)) {
      if (u > v && colors.count(u) > 0) {
        out << "  v" << v << " -- v" << u << ";\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace mlcore
