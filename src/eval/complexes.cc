#include "eval/complexes.h"

namespace mlcore {

double ComplexRecall(const std::vector<VertexSet>& complexes,
                     const std::vector<VertexSet>& dense_subgraphs) {
  if (complexes.empty()) return 0.0;
  int64_t found = 0;
  for (const VertexSet& complex : complexes) {
    for (const VertexSet& subgraph : dense_subgraphs) {
      if (IsSubsetSorted(complex, subgraph)) {
        ++found;
        break;
      }
    }
  }
  return static_cast<double>(found) / static_cast<double>(complexes.size());
}

}  // namespace mlcore
